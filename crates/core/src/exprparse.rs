//! Text syntax for count expressions.
//!
//! Paper Section 4's grammar `E → E + E | E − E | E × E | COUNT_ord(Q)`
//! gets a concrete syntax so expressions can live in config files, CLIs and
//! tests without hand-assembling [`CountExpr`] trees:
//!
//! ```text
//! expr    := term (("+" | "-") term)*
//! term    := factor ("*" factor)*
//! factor  := count | "(" expr ")"
//! count   := "COUNT_ord(" pattern ")"      ordered count
//!          | "COUNT(" pattern ")"          unordered count
//! ```
//!
//! with the usual precedence (`*` binds tighter than `+`/`-`) and patterns
//! in the [`crate::query`] syntax.  Pattern text extends to the
//! parenthesis that closes its `COUNT(…)` — nested parentheses inside the
//! pattern are balanced by the scanner, so `COUNT(A(B,C))` works
//! unambiguously.
//!
//! ```
//! use sketchtree_core::exprparse::parse_expr;
//! let e = parse_expr("COUNT_ord(A(B)) * COUNT_ord(C) - COUNT(D(E,F))").unwrap();
//! assert!(format!("{e:?}").contains("Sub"));
//! ```

use crate::sketchtree::CountExpr;
use std::fmt;

/// Errors from [`parse_expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprParseError {
    /// Unexpected character.
    UnexpectedChar {
        /// Byte offset.
        at: usize,
    },
    /// Input ended mid-expression.
    UnexpectedEnd,
    /// Input continued after a complete expression.
    TrailingInput {
        /// Byte offset where the trailing input starts.
        at: usize,
    },
    /// A `COUNT(`'s parentheses never balanced.
    UnbalancedCount {
        /// Byte offset of the `COUNT`.
        at: usize,
    },
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprParseError::UnexpectedChar { at } => {
                write!(f, "unexpected character at byte {at}")
            }
            ExprParseError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ExprParseError::TrailingInput { at } => write!(f, "trailing input at byte {at}"),
            ExprParseError::UnbalancedCount { at } => {
                write!(f, "unbalanced parentheses in COUNT at byte {at}")
            }
        }
    }
}

impl std::error::Error for ExprParseError {}

/// Parses a count expression.
pub fn parse_expr(input: &str) -> Result<CountExpr, ExprParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let e = p.parse_sum()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(ExprParseError::TrailingInput { at: p.pos });
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_sum(&mut self) -> Result<CountExpr, ExprParseError> {
        let mut acc = self.parse_product()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    acc = acc.add(self.parse_product()?);
                }
                Some(b'-') => {
                    self.pos += 1;
                    acc = acc.sub(self.parse_product()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_product(&mut self) -> Result<CountExpr, ExprParseError> {
        let mut acc = self.parse_factor()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    acc = acc.mul(self.parse_factor()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<CountExpr, ExprParseError> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let e = self.parse_sum()?;
            self.skip_ws();
            if self.peek() != Some(b')') {
                return Err(match self.peek() {
                    None => ExprParseError::UnexpectedEnd,
                    Some(_) => ExprParseError::UnexpectedChar { at: self.pos },
                });
            }
            self.pos += 1;
            return Ok(e);
        }
        // COUNT_ord( … ) or COUNT( … ).
        let rest = &self.input[self.pos..];
        let (ordered, keyword_len) = if rest.starts_with("COUNT_ord(") {
            (true, "COUNT_ord(".len())
        } else if rest.starts_with("COUNT(") {
            (false, "COUNT(".len())
        } else if rest.is_empty() {
            return Err(ExprParseError::UnexpectedEnd);
        } else {
            return Err(ExprParseError::UnexpectedChar { at: self.pos });
        };
        let count_at = self.pos;
        self.pos += keyword_len;
        // Scan the balanced pattern text up to the matching ')'. Quoted
        // labels may contain parentheses; honour the query syntax's quotes.
        let bytes = self.input.as_bytes();
        let start = self.pos;
        let mut depth = 1i32;
        let mut in_quote = false;
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if in_quote {
                match b {
                    b'\\' => self.pos += 1, // skip the escaped byte
                    b'"' => in_quote = false,
                    _ => {}
                }
            } else {
                match b {
                    b'"' => in_quote = true,
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            let pattern = self.input[start..self.pos].trim().to_owned();
                            self.pos += 1;
                            return Ok(if ordered {
                                CountExpr::Ordered(pattern)
                            } else {
                                CountExpr::Unordered(pattern)
                            });
                        }
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        Err(ExprParseError::UnbalancedCount { at: count_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ord(p: &str) -> CountExpr {
        CountExpr::Ordered(p.into())
    }

    #[test]
    fn single_counts() {
        assert_eq!(parse_expr("COUNT_ord(A)").unwrap(), ord("A"));
        assert_eq!(
            parse_expr("COUNT(A(B,C))").unwrap(),
            CountExpr::Unordered("A(B,C)".into())
        );
    }

    #[test]
    fn nested_pattern_parens_balanced() {
        assert_eq!(
            parse_expr("COUNT_ord(A(B(C),D))").unwrap(),
            ord("A(B(C),D)")
        );
    }

    #[test]
    fn precedence_product_over_sum() {
        // a + b*c parses as a + (b*c)
        let e = parse_expr("COUNT_ord(A) + COUNT_ord(B) * COUNT_ord(C)").unwrap();
        assert_eq!(e, ord("A").add(ord("B").mul(ord("C"))));
    }

    #[test]
    fn left_associativity() {
        // a - b + c = (a - b) + c
        let e = parse_expr("COUNT_ord(A) - COUNT_ord(B) + COUNT_ord(C)").unwrap();
        assert_eq!(e, ord("A").sub(ord("B")).add(ord("C")));
    }

    #[test]
    fn grouping_parens() {
        // (a + b) * c
        let e = parse_expr("(COUNT_ord(A) + COUNT_ord(B)) * COUNT_ord(C)").unwrap();
        assert_eq!(e, ord("A").add(ord("B")).mul(ord("C")));
    }

    #[test]
    fn paper_example3_shape() {
        let e = parse_expr(
            "COUNT_ord(Q1)*COUNT_ord(Q2) + COUNT_ord(Q3)*COUNT_ord(Q4) - COUNT_ord(Q5)*COUNT_ord(Q6)",
        )
        .unwrap();
        let expect = ord("Q1")
            .mul(ord("Q2"))
            .add(ord("Q3").mul(ord("Q4")))
            .sub(ord("Q5").mul(ord("Q6")));
        assert_eq!(e, expect);
    }

    #[test]
    fn quoted_patterns_with_parens() {
        let e = parse_expr(r#"COUNT_ord(author("K. (Don) Knuth"))"#).unwrap();
        assert_eq!(e, ord(r#"author("K. (Don) Knuth")"#));
    }

    #[test]
    fn whitespace_tolerated() {
        let a = parse_expr("  COUNT_ord( A ( B ) )  +  COUNT( C )  ").unwrap();
        let b = parse_expr("COUNT_ord(A ( B ))+COUNT(C)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors() {
        assert_eq!(parse_expr(""), Err(ExprParseError::UnexpectedEnd));
        assert!(matches!(
            parse_expr("COUNT_ord(A) +"),
            Err(ExprParseError::UnexpectedEnd)
        ));
        assert!(matches!(
            parse_expr("BOGUS(A)"),
            Err(ExprParseError::UnexpectedChar { .. })
        ));
        assert!(matches!(
            parse_expr("COUNT_ord(A(B)"),
            Err(ExprParseError::UnbalancedCount { .. })
        ));
        assert!(matches!(
            parse_expr("COUNT_ord(A)) "),
            Err(ExprParseError::TrailingInput { .. })
        ));
        assert!(matches!(
            parse_expr("(COUNT_ord(A)"),
            Err(ExprParseError::UnexpectedEnd)
        ));
    }

    #[test]
    fn end_to_end_with_synopsis() {
        use crate::sketchtree::{SketchTree, SketchTreeConfig};
        use sketchtree_sketch::SynopsisConfig;
        use sketchtree_tree::Tree;
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 2,
            synopsis: SynopsisConfig {
                s1: 60,
                s2: 5,
                virtual_streams: 7,
                topk: 0,
                independence: 5,
                ..SynopsisConfig::default()
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        });
        let (a, b, c) = {
            let l = st.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"))
        };
        for _ in 0..40 {
            st.ingest(&Tree::node(a, vec![Tree::leaf(b)]));
        }
        for _ in 0..10 {
            st.ingest(&Tree::node(a, vec![Tree::leaf(c)]));
        }
        let e = parse_expr("COUNT_ord(A(B)) - COUNT_ord(A(C))").unwrap();
        assert_eq!(st.exact_value(&e).unwrap(), 30.0);
        let est = st.estimate(&e).unwrap();
        assert!((est - 30.0).abs() < 15.0, "est {est}");
    }
}
