//! EnumTree — enumerate all ordered tree patterns with at most k edges.
//!
//! Paper Section 5.1 / Algorithm 3.  `P(i, j)` is the set of patterns
//! rooted at node `i` with exactly `j` edges; to build it, pick `t ≥ 1`
//! child edges of `i` and distribute the remaining `j − t` edges over the
//! chosen children in every possible way (weak compositions), taking the
//! cartesian product of the children's own pattern sets.  `P(i, 0) = ⊥`
//! contributes "nothing below this child" and is excluded from cartesian
//! products; an empty `P(i, j)` (no pattern of that size exists) annihilates
//! every composition using it.
//!
//! The paper memoizes `P(i, j)`; because children always have smaller
//! postorder numbers than parents, we can make the memoization implicit by
//! computing bottom-up in postorder — each `P(i, j)` is computed exactly
//! once, and pruning skips compositions that would touch an empty set.
//!
//! The enumeration is *output-sensitive*: its cost is dominated by the
//! number of pattern instances produced (Figure 9 of the paper shows the
//! wall-clock tracking the pattern count almost perfectly, which the
//! `enumtree` Criterion bench reproduces).

use sketchtree_tree::{NodeId, Tree};

/// An edge set representing one pattern (pairs of data-tree node ids).
type EdgeSet = Vec<(NodeId, NodeId)>;
/// `P(i, ·)`: pattern sets per size for one node, `p[j - 1] = P(i, j)`.
type NodePatterns = Vec<Vec<EdgeSet>>;

/// One enumerated pattern instance: a root node of the data tree plus the
/// selected edge set (pairs of data-tree node ids, parent first).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternInstance {
    /// The data-tree node the pattern is rooted at.
    pub root: NodeId,
    /// Selected `(parent, child)` edges; forms a tree rooted at `root`.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// Enumerates every ordered tree pattern of `tree` with 1..=k edges,
/// invoking `f(root, edges)` once per pattern instance.
///
/// If `include_single_nodes` is true, the n single-node patterns (0 edges)
/// are also reported, each with an empty edge slice.  The paper's EnumTree
/// reports patterns "with one to k edges", so the default entry points pass
/// `false`.
pub fn enumerate_patterns_config(
    tree: &Tree,
    k: usize,
    include_single_nodes: bool,
    mut f: impl FnMut(NodeId, &[(NodeId, NodeId)]),
) {
    if include_single_nodes {
        for id in tree.postorder() {
            f(id, &[]);
        }
    }
    if k == 0 {
        return;
    }
    let n = tree.len();
    // memo[node.index()][j - 1] = P(node, j) for j in 1..=k.
    let mut memo: Vec<NodePatterns> = vec![Vec::new(); n];
    // Subtree edge counts bound how many edges a child can absorb.
    let mut sub_edges = vec![0usize; n];
    for id in tree.postorder() {
        let children = tree.children(id);
        // lint:allow(L1, reason = "postorder NodeIds index vectors sized to tree.len()")
        sub_edges[id.index()] = children.iter().map(|c| sub_edges[c.index()] + 1).sum();
        let mut p_i: NodePatterns = vec![Vec::new(); k];
        if !children.is_empty() {
            let fanout = children.len();
            let max_t = fanout.min(k);
            let mut combo: Vec<usize> = Vec::new();
            for t in 1..=max_t {
                // Enumerate all t-combinations of child indices in
                // lexicographic order (preserves sibling order).
                combo.clear();
                combo.extend(0..t);
                loop {
                    distribute(
                        tree,
                        id,
                        children,
                        &combo,
                        k,
                        &memo,
                        &sub_edges,
                        &mut p_i,
                    );
                    if !next_combination(&mut combo, fanout) {
                        break;
                    }
                }
            }
        }
        // Emit all patterns rooted here.
        for js in &p_i {
            for edges in js {
                f(id, edges);
            }
        }
        // lint:allow(L1, reason = "postorder NodeIds index vectors sized to tree.len()")
        memo[id.index()] = p_i;
    }
}

/// For a fixed set of chosen children, distribute remaining edges over them
/// in all ways and extend `p_i` with the resulting patterns.
#[allow(clippy::too_many_arguments)]
fn distribute(
    _tree: &Tree,
    id: NodeId,
    children: &[NodeId],
    combo: &[usize],
    k: usize,
    memo: &[NodePatterns],
    sub_edges: &[usize],
    p_i: &mut [Vec<EdgeSet>],
) {
    let t = combo.len();
    // lint:allow(L1, reason = "combo holds t-combinations of 0..children.len()")
    let chosen: Vec<NodeId> = combo.iter().map(|&ci| children[ci]).collect();
    // Per chosen child, the budgets l for which P(child, l) is non-empty
    // (l = 0 is always allowed: "just the child edge").
    let budgets: Vec<Vec<usize>> = chosen
        .iter()
        .map(|c| {
            let mut b = vec![0usize];
            // lint:allow(L1, reason = "NodeIds index vectors sized to tree.len()")
            let limit = sub_edges[c.index()].min(k - 1);
            for l in 1..=limit {
                // lint:allow(L1, reason = "children precede parents in postorder, so memo[c] is filled with k rows; l <= limit <= k - 1")
                if !memo[c.index()][l - 1].is_empty() {
                    b.push(l);
                }
            }
            b
        })
        .collect();
    let base_edges: EdgeSet = chosen.iter().map(|&c| (id, c)).collect();
    // Recursive composition enumeration with budget pruning.
    let max_extra = k - t;
    let mut current: Vec<usize> = Vec::with_capacity(t);
    compose(&budgets, 0, max_extra, &mut current, &mut |ls: &[usize]| {
        // Total size of this pattern.
        let total = t + ls.iter().sum::<usize>();
        debug_assert!((t..=k).contains(&total));
        // Cartesian product of the chosen children's pattern sets.
        let mut partial: Vec<EdgeSet> = vec![base_edges.clone()];
        for (slot, (&c, &l)) in chosen.iter().zip(ls).enumerate() {
            if l == 0 {
                continue;
            }
            // lint:allow(L1, reason = "l came from budgets, built from non-empty memo[c] rows; l >= 1 guarded above")
            let subs = &memo[c.index()][l - 1];
            let mut next = Vec::with_capacity(partial.len() * subs.len());
            for prefix in &partial {
                for sub in subs {
                    let mut e = prefix.clone();
                    e.extend_from_slice(sub);
                    next.push(e);
                }
            }
            partial = next;
            let _ = slot;
        }
        // lint:allow(L1, reason = "t >= 1 and total <= k == p_i.len(), asserted above")
        p_i[total - 1].extend(partial);
    });
}

/// Advances `combo` to the next t-combination of `0..n` in lexicographic
/// order; returns false when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let t = combo.len();
    let mut i = t;
    while i > 0 {
        i -= 1;
        // lint:allow(L1, reason = "i < t == combo.len() by the loop bound")
        if combo[i] < n - t + i {
            // lint:allow(L1, reason = "i < t == combo.len() by the loop bound")
            combo[i] += 1;
            for q in i + 1..t {
                // lint:allow(L1, reason = "q and q - 1 are both < t == combo.len()")
                combo[q] = combo[q - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Enumerates all weak compositions `ls` with `ls[i] ∈ budgets[i]` and
/// `Σ ls ≤ max_extra`, pruned by budget membership.
fn compose(
    budgets: &[Vec<usize>],
    idx: usize,
    remaining: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if idx == budgets.len() {
        f(current);
        return;
    }
    // lint:allow(L1, reason = "idx == budgets.len() returned just above, so idx < budgets.len()")
    for &l in &budgets[idx] {
        if l > remaining {
            break; // budgets are sorted ascending
        }
        current.push(l);
        compose(budgets, idx + 1, remaining - l, current, f);
        current.pop();
    }
}

/// Enumerates patterns with 1..=k edges (the paper's default).
///
/// ```
/// use sketchtree_core::count_patterns;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let a = labels.intern("a");
/// // A root with two leaves: {left edge, right edge, both} = 3 patterns.
/// let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
/// assert_eq!(count_patterns(&t, 2), 3);
/// ```
pub fn enumerate_patterns(tree: &Tree, k: usize, mut f: impl FnMut(NodeId, &[(NodeId, NodeId)])) {
    enumerate_patterns_config(tree, k, false, &mut f);
}

/// Counts the pattern instances that [`enumerate_patterns`] would produce.
pub fn count_patterns(tree: &Tree, k: usize) -> u64 {
    let mut n = 0u64;
    enumerate_patterns(tree, k, |_, _| n += 1);
    n
}

/// Materialises all pattern instances (convenient for tests and small
/// trees; streams should use [`enumerate_patterns`]).
pub fn collect_patterns(tree: &Tree, k: usize) -> Vec<PatternInstance> {
    let mut out = Vec::new();
    enumerate_patterns(tree, k, |root, edges| {
        out.push(PatternInstance {
            root,
            edges: edges.to_vec(),
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{Label, LabelTable};
    use std::collections::HashSet;

    fn lbl() -> (LabelTable, Label) {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        (t, a)
    }

    /// Brute force: every subset of the tree's edges that forms a tree
    /// containing its root node, with 1..=k edges.
    fn brute_force(tree: &Tree, k: usize) -> HashSet<(NodeId, Vec<(NodeId, NodeId)>)> {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for id in tree.preorder() {
            for &c in tree.children(id) {
                edges.push((id, c));
            }
        }
        let mut out = HashSet::new();
        let m = edges.len();
        assert!(m <= 20, "brute force only for tiny trees");
        for mask in 1u32..(1 << m) {
            let subset: Vec<(NodeId, NodeId)> = (0..m)
                .filter(|&e| mask >> e & 1 == 1)
                .map(|e| edges[e])
                .collect();
            if subset.len() > k {
                continue;
            }
            // Find the root: a node that is a parent but never a child.
            let children: HashSet<NodeId> = subset.iter().map(|&(_, c)| c).collect();
            let parents: HashSet<NodeId> = subset.iter().map(|&(p, _)| p).collect();
            let roots: Vec<NodeId> = parents.difference(&children).copied().collect();
            if roots.len() != 1 {
                continue;
            }
            let root = roots[0];
            // Connectivity: every edge's parent is the root or some child.
            let nodes: HashSet<NodeId> = children.iter().copied().chain([root]).collect();
            if subset.iter().all(|&(p, _)| nodes.contains(&p))
                && nodes.len() == subset.len() + 1
            {
                // Also check each child has exactly one incoming edge.
                let mut sorted = subset.clone();
                sorted.sort();
                out.insert((root, sorted));
            }
        }
        out
    }

    fn enum_set(tree: &Tree, k: usize) -> HashSet<(NodeId, Vec<(NodeId, NodeId)>)> {
        let mut out = HashSet::new();
        enumerate_patterns(tree, k, |root, edges| {
            let mut e = edges.to_vec();
            e.sort();
            assert!(
                out.insert((root, e)),
                "duplicate pattern emitted at root {root:?}"
            );
        });
        out
    }

    #[test]
    fn single_edge_tree() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a)]);
        assert_eq!(count_patterns(&t, 1), 1);
        assert_eq!(count_patterns(&t, 5), 1);
        assert_eq!(count_patterns(&t, 0), 0);
    }

    #[test]
    fn leaf_tree_has_no_edge_patterns() {
        let (_, a) = lbl();
        assert_eq!(count_patterns(&Tree::leaf(a), 3), 0);
    }

    #[test]
    fn two_children_counts() {
        let (_, a) = lbl();
        // a(a,a): patterns with 1 edge: (r,c1), (r,c2); 2 edges: both. = 3.
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        assert_eq!(count_patterns(&t, 1), 2);
        assert_eq!(count_patterns(&t, 2), 3);
    }

    #[test]
    fn chain_counts() {
        let (_, a) = lbl();
        // a-a-a chain: patterns: (r,m), (m,l), (r,m,l) = 3 with k=2.
        let t = Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)])]);
        assert_eq!(count_patterns(&t, 1), 2);
        assert_eq!(count_patterns(&t, 2), 3);
    }

    #[test]
    fn matches_brute_force_on_paper_figure6_tree() {
        let (_, a) = lbl();
        // Figure 6(a): 7 nodes, root with children (5, 6); 5 has (3, 4);
        // 3 has (1, 2).
        let n3 = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        let n5 = Tree::node(a, vec![n3, Tree::leaf(a)]);
        let t = Tree::node(a, vec![n5, Tree::leaf(a)]);
        for k in 1..=6 {
            let brute = brute_force(&t, k);
            let fast = enum_set(&t, k);
            assert_eq!(fast, brute, "k = {k}");
        }
    }

    #[test]
    fn matches_brute_force_on_bushy_tree() {
        let (_, a) = lbl();
        let t = Tree::node(
            a,
            vec![
                Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a), Tree::leaf(a)]),
                Tree::leaf(a),
                Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)])]),
            ],
        );
        for k in 1..=4 {
            assert_eq!(enum_set(&t, k), brute_force(&t, k), "k = {k}");
        }
    }

    #[test]
    fn matches_brute_force_on_deep_chain() {
        let (_, a) = lbl();
        let mut t = Tree::leaf(a);
        for _ in 0..7 {
            t = Tree::node(a, vec![t]);
        }
        for k in 1..=5 {
            assert_eq!(enum_set(&t, k), brute_force(&t, k), "k = {k}");
        }
    }

    #[test]
    fn star_fanout_counts_are_binomial_sums() {
        let (_, a) = lbl();
        // Star with f leaves: patterns with j edges = C(f, j).
        let f = 6;
        let t = Tree::node(a, (0..f).map(|_| Tree::leaf(a)).collect());
        for k in 1..=f {
            let expect: u64 = (1..=k as u64).map(|j| binom(f as u64, j)).sum();
            assert_eq!(count_patterns(&t, k), expect, "k = {k}");
        }
    }

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn include_single_nodes_adds_n() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        let mut count = 0u64;
        enumerate_patterns_config(&t, 2, true, |_, _| count += 1);
        assert_eq!(count, 3 + 3); // 3 single nodes + 3 edge patterns
    }

    #[test]
    fn emitted_edge_sets_are_trees() {
        let (_, a) = lbl();
        let t = Tree::node(
            a,
            vec![
                Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]),
                Tree::node(a, vec![Tree::leaf(a)]),
            ],
        );
        enumerate_patterns(&t, 4, |root, edges| {
            // project() panics if the edges don't form a tree at root.
            let p = t.project(root, edges);
            assert_eq!(p.edge_count(), edges.len());
        });
    }

    #[test]
    fn sibling_order_is_preserved_in_combinations() {
        let mut lt = LabelTable::new();
        let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
        let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let mut sexprs = Vec::new();
        enumerate_patterns(&t, 2, |root, edges| {
            sexprs.push(t.project(root, edges).to_sexpr_named(&lt));
        });
        sexprs.sort();
        assert_eq!(sexprs, vec!["a(b)", "a(b,c)", "a(c)"]);
    }

    #[test]
    fn collect_patterns_materialises() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a)]);
        let v = collect_patterns(&t, 3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].root, t.root());
        assert_eq!(v[0].edges.len(), 1);
    }
}
