//! EnumTree — enumerate all ordered tree patterns with at most k edges.
//!
//! Paper Section 5.1 / Algorithm 3.  `P(i, j)` is the set of patterns
//! rooted at node `i` with exactly `j` edges; to build it, pick `t ≥ 1`
//! child edges of `i` and distribute the remaining `j − t` edges over the
//! chosen children in every possible way (weak compositions), taking the
//! cartesian product of the children's own pattern sets.  `P(i, 0) = ⊥`
//! contributes "nothing below this child" and is excluded from cartesian
//! products; an empty `P(i, j)` (no pattern of that size exists) annihilates
//! every composition using it.
//!
//! The paper memoizes `P(i, j)`; because children always have smaller
//! postorder numbers than parents, we can make the memoization implicit by
//! computing bottom-up in postorder — each `P(i, j)` is computed exactly
//! once, and pruning skips compositions that would touch an empty set.
//!
//! The enumeration is *output-sensitive*: its cost is dominated by the
//! number of pattern instances produced (Figure 9 of the paper shows the
//! wall-clock tracking the pattern count almost perfectly, which the
//! `enumtree` Criterion bench reproduces).

use sketchtree_tree::{NodeId, Tree};

/// One enumerated pattern instance: a root node of the data tree plus the
/// selected edge set (pairs of data-tree node ids, parent first).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternInstance {
    /// The data-tree node the pattern is rooted at.
    pub root: NodeId,
    /// Selected `(parent, child)` edges; forms a tree rooted at `root`.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// Reusable enumeration scratch: the memo table, pattern-edge pool and
/// composition buffers of one EnumTree run, *cleared* — never freed —
/// between trees.
///
/// The paper's memo `P(i, j)` is a set of edge sets; materialising it as
/// nested `Vec<Vec<Vec<_>>>` costs one heap allocation per pattern
/// instance, which dominates the ingest hot path on streams of small
/// trees.  The arena flattens the representation instead:
///
/// * every pattern's edge list lives back-to-back in one `edges` pool,
///   addressed by a `(start, len)` span;
/// * `P(i, j)` is a row of span indices (`rows[i * k + (j - 1)]`);
/// * cartesian-product composition copies prefixes with
///   `Vec::extend_from_within` inside the pool.
///
/// After the first few trees every buffer has reached its steady-state
/// capacity and enumeration performs **zero** allocations per tree.  The
/// emission order is identical to the historical nested-`Vec`
/// implementation — same combination order, same composition order, same
/// per-size grouping — which the ingest parity tests rely on.
#[derive(Debug, Default)]
pub struct EnumArena {
    /// All pattern edge lists, back to back (the span pool).
    edges: Vec<(NodeId, NodeId)>,
    /// Span `s` covers `edges[spans[s].0 ..][.. spans[s].1]`.
    spans: Vec<(u32, u32)>,
    /// `rows[node * k + (j - 1)]` = span indices of `P(node, j)`.
    rows: Vec<Vec<u32>>,
    /// Subtree edge counts, bounding how many edges a child can absorb.
    sub_edges: Vec<usize>,
    /// Current t-combination of child indices.
    combo: Vec<usize>,
    /// Per chosen child, the budgets `l` with non-empty `P(child, l)`.
    budgets: Vec<Vec<usize>>,
    /// Current weak composition in [`compose`].
    ls: Vec<usize>,
    /// Cartesian-product frontier (span indices).
    partial: Vec<u32>,
    /// Next cartesian-product frontier.
    next_partial: Vec<u32>,
    /// Postorder node buffer.
    post: Vec<NodeId>,
    /// DFS stack for the postorder walk.
    stack: Vec<NodeId>,
}

impl EnumArena {
    /// An empty arena; buffers grow to steady state over the first trees.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Widening u32 → usize index conversion (all supported targets).
#[inline]
fn ux(n: u32) -> usize {
    // lint:allow(L2, reason = "u32 -> usize is widening on all supported targets")
    n as usize
}

/// Narrowing usize → u32 span bookkeeping; the pattern pool is explicitly
/// capped at u32 index space (a pool that large would be hundreds of
/// gigabytes — enumeration would have OOMed long before).
#[inline]
fn u32x(n: usize) -> u32 {
    // lint:allow(L1, reason = "deliberate cap: a pool past u32 index space is a config error worth aborting on, per the doc above")
    u32::try_from(n).expect("pattern pool exceeds u32 index space")
}

/// Enumerates every ordered tree pattern of `tree` with 1..=k edges,
/// invoking `f(root, edges)` once per pattern instance.
///
/// If `include_single_nodes` is true, the n single-node patterns (0 edges)
/// are also reported, each with an empty edge slice.  The paper's EnumTree
/// reports patterns "with one to k edges", so the default entry points pass
/// `false`.
///
/// One-shot form: allocates a fresh [`EnumArena`] per call.  Streaming
/// callers should hold an arena and use
/// [`enumerate_patterns_config_with`] so buffer capacity carries across
/// trees.
pub fn enumerate_patterns_config(
    tree: &Tree,
    k: usize,
    include_single_nodes: bool,
    mut f: impl FnMut(NodeId, &[(NodeId, NodeId)]),
) {
    let mut arena = EnumArena::new();
    enumerate_patterns_config_with(&mut arena, tree, k, include_single_nodes, &mut f);
}

/// [`enumerate_patterns_config`] with caller-owned scratch: identical
/// output (same patterns, same order), zero steady-state allocations.
pub fn enumerate_patterns_config_with(
    arena: &mut EnumArena,
    tree: &Tree,
    k: usize,
    include_single_nodes: bool,
    mut f: impl FnMut(NodeId, &[(NodeId, NodeId)]),
) {
    let EnumArena {
        edges,
        spans,
        rows,
        sub_edges,
        combo,
        budgets,
        ls,
        partial,
        next_partial,
        post,
        stack,
    } = arena;
    // Postorder walk into the reused buffer (reverse of a right-to-left
    // preorder, exactly like `Tree::postorder`).
    post.clear();
    stack.clear();
    stack.push(tree.root());
    while let Some(id) = stack.pop() {
        post.push(id);
        for &c in tree.children(id) {
            stack.push(c);
        }
    }
    post.reverse();
    if include_single_nodes {
        for &id in post.iter() {
            f(id, &[]);
        }
    }
    if k == 0 {
        return;
    }
    let n = tree.len();
    edges.clear();
    spans.clear();
    // lint:allow(L3, reason = "n * k rows: both factors bounded by in-memory tree size and the configured pattern size; the rows vector allocation would fail first")
    let row_count = n * k;
    if rows.len() < row_count {
        rows.resize_with(row_count, Vec::new);
    }
    // lint:allow(L1, reason = "rows was just resized to at least row_count entries")
    for row in &mut rows[..row_count] {
        row.clear();
    }
    sub_edges.clear();
    sub_edges.resize(n, 0);
    for &id in post.iter() {
        let children = tree.children(id);
        // lint:allow(L1, reason = "postorder NodeIds index vectors sized to tree.len()")
        sub_edges[id.index()] = children.iter().map(|c| sub_edges[c.index()] + 1).sum();
        // lint:allow(L3, reason = "id.index() < n, so the row base is within the rows vector sized n * k")
        let row_base = id.index() * k;
        if !children.is_empty() {
            let fanout = children.len();
            let max_t = fanout.min(k);
            for t in 1..=max_t {
                // Enumerate all t-combinations of child indices in
                // lexicographic order (preserves sibling order).
                combo.clear();
                combo.extend(0..t);
                loop {
                    distribute(
                        id, children, combo, k, sub_edges, edges, spans, rows, budgets, ls,
                        partial, next_partial,
                    );
                    if !next_combination(combo, fanout) {
                        break;
                    }
                }
            }
        }
        // Emit all patterns rooted here, grouped by size ascending.
        for j in 0..k {
            // lint:allow(L1, reason = "row_base + j < n * k == row_count by construction")
            for &s in &rows[row_base + j] {
                // lint:allow(L1, reason = "span indices are only ever minted by pushes into spans")
                let (start, len) = spans[ux(s)];
                // lint:allow(L1, reason = "spans record (start, len) of a completed extend into edges")
                f(id, &edges[ux(start)..ux(start) + ux(len)]);
            }
        }
    }
}

/// For a fixed set of chosen children, distribute remaining edges over them
/// in all ways and extend node `id`'s memo rows with the resulting
/// patterns (as spans into the shared edge pool).
#[allow(clippy::too_many_arguments)]
fn distribute(
    id: NodeId,
    children: &[NodeId],
    combo: &[usize],
    k: usize,
    sub_edges: &[usize],
    edges: &mut Vec<(NodeId, NodeId)>,
    spans: &mut Vec<(u32, u32)>,
    rows: &mut [Vec<u32>],
    budgets: &mut Vec<Vec<usize>>,
    ls: &mut Vec<usize>,
    partial: &mut Vec<u32>,
    next_partial: &mut Vec<u32>,
) {
    let t = combo.len();
    // Per chosen child, the budgets l for which P(child, l) is non-empty
    // (l = 0 is always allowed: "just the child edge").
    if budgets.len() < t {
        budgets.resize_with(t, Vec::new);
    }
    for (slot, &ci) in combo.iter().enumerate() {
        // lint:allow(L1, reason = "combo holds t-combinations of 0..children.len(); slot < t <= budgets.len()")
        let c = children[ci];
        // lint:allow(L1, reason = "slot < t and budgets was just resized to at least t entries")
        let b = &mut budgets[slot];
        b.clear();
        b.push(0);
        // lint:allow(L1, reason = "NodeIds index vectors sized to tree.len()")
        let limit = sub_edges[c.index()].min(k - 1);
        for l in 1..=limit {
            // lint:allow(L1, L3, reason = "children precede parents in postorder, so rows[c * k ..] holds k filled rows; l <= limit <= k - 1")
            if !rows[c.index() * k + (l - 1)].is_empty() {
                b.push(l);
            }
        }
    }
    // The base pattern (just the chosen child edges) enters the pool once;
    // compose's first callback is always the all-zero assignment, which
    // claims it, and later callbacks copy from it.
    let base_start = u32x(edges.len());
    for &ci in combo {
        // lint:allow(L1, reason = "combo holds t-combinations of 0..children.len()")
        edges.push((id, children[ci]));
    }
    let base_span = u32x(spans.len());
    spans.push((base_start, u32x(t)));
    // Recursive composition enumeration with budget pruning.
    let max_extra = k - t;
    ls.clear();
    // lint:allow(L1, reason = "budgets was resized to at least t entries at the top of this function")
    compose(&budgets[..t], 0, max_extra, ls, &mut |ls: &[usize]| {
        // Total size of this pattern.
        let total = t + ls.iter().sum::<usize>();
        debug_assert!((t..=k).contains(&total));
        // lint:allow(L3, reason = "id.index() * k + total - 1 < rows.len(): total <= k and id indexes the tree")
        let row = id.index() * k + (total - 1);
        if total == t {
            // All-zero assignment: the base pattern itself.
            // lint:allow(L1, reason = "row < n * k as above")
            rows[row].push(base_span);
            return;
        }
        // Cartesian product of the chosen children's pattern sets, with
        // every product edge list appended to the pool via
        // extend_from_within (prefix copy, then sub copy).
        partial.clear();
        partial.push(base_span);
        for (&ci, &l) in combo.iter().zip(ls.iter()) {
            if l == 0 {
                continue;
            }
            // lint:allow(L1, reason = "combo holds t-combinations of 0..children.len()")
            let c = children[ci];
            // lint:allow(L3, reason = "l came from budgets, built from non-empty rows; l >= 1 guarded above, l <= k - 1")
            let sub_row = c.index() * k + (l - 1);
            next_partial.clear();
            for &p in partial.iter() {
                // lint:allow(L1, reason = "span indices are only ever minted by pushes into spans")
                let (p_start, p_len) = spans[ux(p)];
                // lint:allow(L1, reason = "sub_row < n * k; see budget construction above")
                for si in 0..rows[sub_row].len() {
                    // lint:allow(L1, reason = "si < rows[sub_row].len() by the loop bound")
                    let sub = rows[sub_row][si];
                    // lint:allow(L1, reason = "span indices are only ever minted by pushes into spans")
                    let (s_start, s_len) = spans[ux(sub)];
                    let new_start = u32x(edges.len());
                    // lint:allow(L3, reason = "span (start, len) pairs address completed regions of the edge pool")
                    edges.extend_from_within(ux(p_start)..ux(p_start) + ux(p_len));
                    // lint:allow(L3, reason = "span (start, len) pairs address completed regions of the edge pool")
                    edges.extend_from_within(ux(s_start)..ux(s_start) + ux(s_len));
                    let new_span = u32x(spans.len());
                    // lint:allow(L3, reason = "p_len + s_len <= k edges per pattern, far below u32::MAX")
                    spans.push((new_start, p_len + s_len));
                    next_partial.push(new_span);
                }
            }
            std::mem::swap(partial, next_partial);
        }
        // lint:allow(L1, reason = "row < n * k as above")
        rows[row].extend_from_slice(partial);
    });
}

/// Advances `combo` to the next t-combination of `0..n` in lexicographic
/// order; returns false when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let t = combo.len();
    let mut i = t;
    while i > 0 {
        i -= 1;
        // lint:allow(L1, reason = "i < t == combo.len() by the loop bound")
        if combo[i] < n - t + i {
            // lint:allow(L1, reason = "i < t == combo.len() by the loop bound")
            combo[i] += 1;
            for q in i + 1..t {
                // lint:allow(L1, reason = "q and q - 1 are both < t == combo.len()")
                combo[q] = combo[q - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Enumerates all weak compositions `ls` with `ls[i] ∈ budgets[i]` and
/// `Σ ls ≤ max_extra`, pruned by budget membership.
fn compose(
    budgets: &[Vec<usize>],
    idx: usize,
    remaining: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if idx == budgets.len() {
        f(current);
        return;
    }
    // lint:allow(L1, reason = "idx == budgets.len() returned just above, so idx < budgets.len()")
    for &l in &budgets[idx] {
        if l > remaining {
            break; // budgets are sorted ascending
        }
        current.push(l);
        compose(budgets, idx + 1, remaining - l, current, f);
        current.pop();
    }
}

/// Enumerates patterns with 1..=k edges (the paper's default).
///
/// ```
/// use sketchtree_core::count_patterns;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let a = labels.intern("a");
/// // A root with two leaves: {left edge, right edge, both} = 3 patterns.
/// let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
/// assert_eq!(count_patterns(&t, 2), 3);
/// ```
pub fn enumerate_patterns(tree: &Tree, k: usize, mut f: impl FnMut(NodeId, &[(NodeId, NodeId)])) {
    enumerate_patterns_config(tree, k, false, &mut f);
}

/// Counts the pattern instances that [`enumerate_patterns`] would produce.
pub fn count_patterns(tree: &Tree, k: usize) -> u64 {
    let mut n = 0u64;
    enumerate_patterns(tree, k, |_, _| n += 1);
    n
}

/// Materialises all pattern instances (convenient for tests and small
/// trees; streams should use [`enumerate_patterns`]).
pub fn collect_patterns(tree: &Tree, k: usize) -> Vec<PatternInstance> {
    let mut out = Vec::new();
    enumerate_patterns(tree, k, |root, edges| {
        out.push(PatternInstance {
            root,
            edges: edges.to_vec(),
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{Label, LabelTable};
    use std::collections::HashSet;

    fn lbl() -> (LabelTable, Label) {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        (t, a)
    }

    /// Brute force: every subset of the tree's edges that forms a tree
    /// containing its root node, with 1..=k edges.
    fn brute_force(tree: &Tree, k: usize) -> HashSet<(NodeId, Vec<(NodeId, NodeId)>)> {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for id in tree.preorder() {
            for &c in tree.children(id) {
                edges.push((id, c));
            }
        }
        let mut out = HashSet::new();
        let m = edges.len();
        assert!(m <= 20, "brute force only for tiny trees");
        for mask in 1u32..(1 << m) {
            let subset: Vec<(NodeId, NodeId)> = (0..m)
                .filter(|&e| mask >> e & 1 == 1)
                .map(|e| edges[e])
                .collect();
            if subset.len() > k {
                continue;
            }
            // Find the root: a node that is a parent but never a child.
            let children: HashSet<NodeId> = subset.iter().map(|&(_, c)| c).collect();
            let parents: HashSet<NodeId> = subset.iter().map(|&(p, _)| p).collect();
            let roots: Vec<NodeId> = parents.difference(&children).copied().collect();
            if roots.len() != 1 {
                continue;
            }
            let root = roots[0];
            // Connectivity: every edge's parent is the root or some child.
            let nodes: HashSet<NodeId> = children.iter().copied().chain([root]).collect();
            if subset.iter().all(|&(p, _)| nodes.contains(&p))
                && nodes.len() == subset.len() + 1
            {
                // Also check each child has exactly one incoming edge.
                let mut sorted = subset.clone();
                sorted.sort();
                out.insert((root, sorted));
            }
        }
        out
    }

    fn enum_set(tree: &Tree, k: usize) -> HashSet<(NodeId, Vec<(NodeId, NodeId)>)> {
        let mut out = HashSet::new();
        enumerate_patterns(tree, k, |root, edges| {
            let mut e = edges.to_vec();
            e.sort();
            assert!(
                out.insert((root, e)),
                "duplicate pattern emitted at root {root:?}"
            );
        });
        out
    }

    #[test]
    fn single_edge_tree() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a)]);
        assert_eq!(count_patterns(&t, 1), 1);
        assert_eq!(count_patterns(&t, 5), 1);
        assert_eq!(count_patterns(&t, 0), 0);
    }

    #[test]
    fn leaf_tree_has_no_edge_patterns() {
        let (_, a) = lbl();
        assert_eq!(count_patterns(&Tree::leaf(a), 3), 0);
    }

    #[test]
    fn two_children_counts() {
        let (_, a) = lbl();
        // a(a,a): patterns with 1 edge: (r,c1), (r,c2); 2 edges: both. = 3.
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        assert_eq!(count_patterns(&t, 1), 2);
        assert_eq!(count_patterns(&t, 2), 3);
    }

    #[test]
    fn chain_counts() {
        let (_, a) = lbl();
        // a-a-a chain: patterns: (r,m), (m,l), (r,m,l) = 3 with k=2.
        let t = Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)])]);
        assert_eq!(count_patterns(&t, 1), 2);
        assert_eq!(count_patterns(&t, 2), 3);
    }

    #[test]
    fn matches_brute_force_on_paper_figure6_tree() {
        let (_, a) = lbl();
        // Figure 6(a): 7 nodes, root with children (5, 6); 5 has (3, 4);
        // 3 has (1, 2).
        let n3 = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        let n5 = Tree::node(a, vec![n3, Tree::leaf(a)]);
        let t = Tree::node(a, vec![n5, Tree::leaf(a)]);
        for k in 1..=6 {
            let brute = brute_force(&t, k);
            let fast = enum_set(&t, k);
            assert_eq!(fast, brute, "k = {k}");
        }
    }

    #[test]
    fn matches_brute_force_on_bushy_tree() {
        let (_, a) = lbl();
        let t = Tree::node(
            a,
            vec![
                Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a), Tree::leaf(a)]),
                Tree::leaf(a),
                Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)])]),
            ],
        );
        for k in 1..=4 {
            assert_eq!(enum_set(&t, k), brute_force(&t, k), "k = {k}");
        }
    }

    #[test]
    fn matches_brute_force_on_deep_chain() {
        let (_, a) = lbl();
        let mut t = Tree::leaf(a);
        for _ in 0..7 {
            t = Tree::node(a, vec![t]);
        }
        for k in 1..=5 {
            assert_eq!(enum_set(&t, k), brute_force(&t, k), "k = {k}");
        }
    }

    #[test]
    fn star_fanout_counts_are_binomial_sums() {
        let (_, a) = lbl();
        // Star with f leaves: patterns with j edges = C(f, j).
        let f = 6;
        let t = Tree::node(a, (0..f).map(|_| Tree::leaf(a)).collect());
        for k in 1..=f {
            let expect: u64 = (1..=k as u64).map(|j| binom(f as u64, j)).sum();
            assert_eq!(count_patterns(&t, k), expect, "k = {k}");
        }
    }

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn include_single_nodes_adds_n() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        let mut count = 0u64;
        enumerate_patterns_config(&t, 2, true, |_, _| count += 1);
        assert_eq!(count, 3 + 3); // 3 single nodes + 3 edge patterns
    }

    #[test]
    fn emitted_edge_sets_are_trees() {
        let (_, a) = lbl();
        let t = Tree::node(
            a,
            vec![
                Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]),
                Tree::node(a, vec![Tree::leaf(a)]),
            ],
        );
        enumerate_patterns(&t, 4, |root, edges| {
            // project() panics if the edges don't form a tree at root.
            let p = t.project(root, edges);
            assert_eq!(p.edge_count(), edges.len());
        });
    }

    #[test]
    fn sibling_order_is_preserved_in_combinations() {
        let mut lt = LabelTable::new();
        let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
        let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let mut sexprs = Vec::new();
        enumerate_patterns(&t, 2, |root, edges| {
            sexprs.push(t.project(root, edges).to_sexpr_named(&lt));
        });
        sexprs.sort();
        assert_eq!(sexprs, vec!["a(b)", "a(b,c)", "a(c)"]);
    }

    /// Reusing one arena across many trees must produce exactly the
    /// sequence (roots, edge lists, order) a fresh arena produces per
    /// tree — the property the allocation-free ingest path rides on.
    #[test]
    fn arena_reuse_is_order_identical_to_fresh_runs() {
        let mut lt = LabelTable::new();
        let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
        let trees = vec![
            Tree::leaf(a),
            Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]),
            Tree::node(
                a,
                vec![
                    Tree::node(b, vec![Tree::leaf(c), Tree::leaf(a)]),
                    Tree::leaf(c),
                    Tree::node(c, vec![Tree::node(a, vec![Tree::leaf(b)])]),
                ],
            ),
            Tree::node(a, (0..5).map(|_| Tree::leaf(b)).collect()),
            Tree::node(b, vec![Tree::node(a, vec![Tree::node(c, vec![Tree::leaf(a)])])]),
        ];
        for k in 0..=4 {
            for include in [false, true] {
                let mut arena = EnumArena::new();
                for t in &trees {
                    let mut fresh: Vec<(NodeId, Vec<(NodeId, NodeId)>)> = Vec::new();
                    enumerate_patterns_config(t, k, include, |r, e| {
                        fresh.push((r, e.to_vec()));
                    });
                    let mut reused = Vec::new();
                    enumerate_patterns_config_with(&mut arena, t, k, include, |r, e| {
                        reused.push((r, e.to_vec()));
                    });
                    assert_eq!(reused, fresh, "k = {k}, include = {include}, tree {t}");
                }
            }
        }
    }

    #[test]
    fn collect_patterns_materialises() {
        let (_, a) = lbl();
        let t = Tree::node(a, vec![Tree::leaf(a)]);
        let v = collect_patterns(&t, 3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].root, t.root());
        assert_eq!(v[0].edges.len(), 1);
    }
}
