//! A-priori error bounds — Theorem 1 turned into a user-facing API.
//!
//! Theorem 1: with `s1 = 8·SJ(S)/(ε²·f_q²)` averaged sketches and
//! `s2 = 2·lg(1/δ)` median groups, the estimate of `f_q` has relative
//! error at most `ε` with probability at least `1 − δ`.  Solving for ε at
//! a *given* configuration tells a user how much to trust an answer:
//!
//! ```text
//! ε(q) = sqrt( 8 · SJ(S_q) / (s1 · f_q²) )        δ = 2^(−s2/2)
//! ```
//!
//! where `SJ(S_q)` is the residual self-join size of the virtual stream
//! the query routes to (top-k deletions already removed — the whole point
//! of Section 5.2), and `f_q` is approximated by the estimate itself.
//! The reported bound is therefore an *estimate of the bound*, good for
//! triage ("this count is ±5%", "this count is noise") rather than a
//! certified guarantee — the same way the paper's Section 7 interprets its
//! configurations.

use crate::sketchtree::{SketchTree, SketchTreeError};

/// An estimate together with its Theorem 1 error profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedEstimate {
    /// The point estimate of the count.
    pub estimate: f64,
    /// Estimated relative error bound ε at confidence `1 − delta`
    /// (infinite when the estimate is ≈ 0 — zero counts carry only
    /// additive, not relative, guarantees).
    pub epsilon: f64,
    /// The failure probability δ determined by `s2`.
    pub delta: f64,
    /// Residual self-join size of the virtual stream the query hits.
    pub residual_self_join: f64,
}

impl BoundedEstimate {
    /// A human-readable one-line rendering, e.g. `1234.0 ±4.2% (95% conf)`.
    pub fn display(&self) -> String {
        if self.epsilon.is_finite() {
            format!(
                "{:.1} ±{:.1}% ({:.0}% conf)",
                self.estimate,
                self.epsilon * 100.0,
                (1.0 - self.delta) * 100.0
            )
        } else {
            format!("{:.1} (below noise floor)", self.estimate)
        }
    }
}

impl SketchTree {
    /// Estimates `COUNT_ord` of a textual pattern together with its
    /// Theorem 1 error profile.
    pub fn count_ordered_bounded(
        &self,
        pattern: &str,
    ) -> Result<BoundedEstimate, SketchTreeError> {
        let estimate = self.count_ordered(pattern)?;
        Ok(self.profile(estimate))
    }

    /// Wraps an existing estimate in its error profile.
    pub fn profile(&self, estimate: f64) -> BoundedEstimate {
        let s1 = self.config().synopsis.s1 as f64;
        let s2 = self.config().synopsis.s2 as f64;
        // Residual SJ across the synopsis; per-stream SJ is at most this
        // (it is the sum over disjoint streams), so the bound is
        // conservative.
        let sj = self.residual_self_join().max(0.0);
        let epsilon = if estimate.abs() < 1.0 {
            f64::INFINITY
        } else {
            (8.0 * sj / (s1 * estimate * estimate)).sqrt()
        };
        BoundedEstimate {
            estimate,
            epsilon,
            delta: 2f64.powf(-s2 / 2.0),
            residual_self_join: sj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketchtree::SketchTreeConfig;
    use sketchtree_sketch::SynopsisConfig;
    use sketchtree_tree::Tree;

    fn build(s1: usize) -> SketchTree {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 2,
            synopsis: SynopsisConfig {
                s1,
                s2: 7,
                virtual_streams: 13,
                // No top-k: with only a few distinct patterns a tracker
                // would absorb the entire stream and the residual
                // self-join (hence every ε) would be zero.
                topk: 0,
                ..SynopsisConfig::default()
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        });
        let (a, b, c) = {
            let l = st.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"))
        };
        for _ in 0..400 {
            st.ingest(&Tree::node(a, vec![Tree::leaf(b)]));
        }
        for _ in 0..20 {
            st.ingest(&Tree::node(a, vec![Tree::leaf(c)]));
        }
        st
    }

    #[test]
    fn heavier_counts_have_tighter_bounds() {
        let st = build(25);
        let heavy = st.count_ordered_bounded("A(B)").unwrap();
        let light = st.count_ordered_bounded("A(C)").unwrap();
        assert!(heavy.epsilon < light.epsilon, "{heavy:?} vs {light:?}");
    }

    #[test]
    fn more_sketches_tighten_bounds() {
        let small = build(10).count_ordered_bounded("A(C)").unwrap();
        let big = build(160).count_ordered_bounded("A(C)").unwrap();
        assert!(big.epsilon < small.epsilon, "{small:?} vs {big:?}");
    }

    #[test]
    fn delta_from_s2() {
        let st = build(25);
        let p = st.profile(100.0);
        assert!((p.delta - 2f64.powf(-3.5)).abs() < 1e-12);
    }

    #[test]
    fn zero_estimates_have_no_relative_bound() {
        let st = build(25);
        let p = st.profile(0.0);
        assert!(p.epsilon.is_infinite());
        assert!(p.display().contains("noise"));
    }

    #[test]
    fn bound_is_honest_on_average() {
        // The measured error of A(B) should be far below the reported ε
        // (the bound is conservative by an 8x Chebyshev factor).
        let st = build(50);
        let b = st.count_ordered_bounded("A(B)").unwrap();
        let exact = st.exact_count_ordered("A(B)").unwrap() as f64;
        let actual_err = (b.estimate - exact).abs() / exact;
        assert!(
            actual_err <= b.epsilon.max(0.05),
            "actual {actual_err} vs bound {}",
            b.epsilon
        );
    }

    #[test]
    fn display_formats() {
        let st = build(25);
        let s = st.count_ordered_bounded("A(B)").unwrap().display();
        assert!(s.contains('%'), "{s}");
    }
}
