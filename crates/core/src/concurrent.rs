//! A thread-safe handle around [`SketchTree`].
//!
//! The paper's synopsis is single-writer by construction (one stream), but
//! real deployments often want query threads reading while the ingest
//! thread writes, or several parsers feeding one synopsis.  AMS updates
//! commute — `X += ξ` in any interleaving yields the same counters — so a
//! reader-writer lock over the whole synopsis gives linearizable counts
//! with zero algorithmic change: ingests take the write lock (they mutate
//! counters and top-k state), queries take the read lock and can proceed
//! concurrently with each other.
//!
//! For multi-producer pipelines, parse/enumerate *outside* the lock and
//! only hold it for the sketch updates: [`SharedSketchTree::ingest`] does
//! exactly that ordering internally (enumeration needs no lock only if the
//! tree is already built — building trees is the caller's, lock-free,
//! side).

use crate::parallel::IngestOptions;
use crate::sketchtree::{CountExpr, SketchTree, SketchTreeError};
use parking_lot::RwLock;
use sketchtree_tree::Tree;
use std::sync::Arc;

/// A callback invoked (under the shared read lock) after every batch
/// ingest and merge completes — the hook point standing-query evaluators
/// attach to.  The callback receives the post-batch synopsis; it must not
/// re-lock the same [`SharedSketchTree`] (it already holds the read side).
pub type BatchHook = dyn Fn(&SketchTree) + Send + Sync;

/// A cloneable, thread-safe [`SketchTree`] handle.
#[derive(Clone)]
pub struct SharedSketchTree {
    inner: Arc<RwLock<SketchTree>>,
    /// Post-batch hooks, shared across clones.  Read-mostly: cloned out
    /// under a short lock before invocation so a slow hook never blocks
    /// hook registration.
    hooks: Arc<RwLock<Vec<Arc<BatchHook>>>>,
    opts: IngestOptions,
}

impl SharedSketchTree {
    /// Wraps a synopsis for shared use with default ingest options
    /// (thread count from `SKETCHTREE_INGEST_THREADS` or the machine's
    /// available parallelism).
    pub fn new(st: SketchTree) -> Self {
        Self::with_options(st, IngestOptions::default())
    }

    /// Wraps a synopsis with explicit parallel-ingest geometry.
    pub fn with_options(st: SketchTree, opts: IngestOptions) -> Self {
        Self {
            inner: Arc::new(RwLock::new(st)),
            hooks: Arc::new(RwLock::new(Vec::new())),
            opts: IngestOptions {
                threads: opts.threads.max(1),
                chunk_size: opts.chunk_size.max(1),
            },
        }
    }

    /// Registers a hook run after every [`SharedSketchTree::ingest_batch`]
    /// and [`SharedSketchTree::merge`] completes, under the shared read
    /// lock on the post-batch state.  This is how a standing-query
    /// evaluator sees each new epoch exactly once, however many readers
    /// are subscribed.  (Single-tree [`SharedSketchTree::ingest`] does not
    /// fire hooks: it is the low-latency path and servers batch.)
    pub fn add_batch_hook(&self, hook: Arc<BatchHook>) {
        self.hooks.write().push(hook);
    }

    /// Invokes every registered hook with shared access to the synopsis.
    fn run_batch_hooks(&self) {
        let hooks = self.hooks.read().clone();
        if hooks.is_empty() {
            return;
        }
        let guard = self.inner.read();
        for h in &hooks {
            h(&guard);
        }
    }

    /// The ingest geometry this handle applies to batches.
    pub fn ingest_options(&self) -> IngestOptions {
        self.opts
    }

    /// Ingests one tree (exclusive lock for the sketch updates).
    ///
    /// The tree must have been built against this synopsis' label table —
    /// use [`SharedSketchTree::with_labels`] to intern labels first.
    pub fn ingest(&self, tree: &Tree) {
        self.inner.write().ingest(tree);
    }

    /// Ingests a batch of trees through the parallel pipeline.
    ///
    /// The batch is processed in [`IngestOptions::chunk_size`] windows.
    /// Per window, the expensive half of Algorithm 1 — pattern
    /// enumeration, Prüfer encoding and fingerprint mapping — fans out
    /// across [`IngestOptions::threads`] workers under the *shared* lock
    /// (concurrent with queries and other producers), then the sketch
    /// insertions run sharded by virtual-stream partition under the
    /// exclusive lock.  Bounding each lock window means a checkpoint
    /// writer or query interleaves between windows instead of waiting
    /// out the whole batch.
    ///
    /// The resulting synopsis state is bit-identical to calling
    /// [`SharedSketchTree::ingest`] on each tree in order, at every
    /// thread count and chunk size (when no other writer interleaves).
    ///
    /// Returns `(trees, pattern instances)` added by this batch.
    pub fn ingest_batch(&self, trees: &[Tree]) -> (u64, u64) {
        let mut patterns = 0u64;
        for window in trees.chunks(self.opts.chunk_size.max(1)) {
            let values: Vec<Vec<u64>> = {
                let guard = self.inner.read();
                guard.enumerate_values_batch(window, self.opts)
            };
            patterns += values.iter().map(|v| v.len() as u64).sum::<u64>();
            // lint:allow(L4, reason = "the read guard above is scoped to its own block and dropped before this write; the lexical pass cannot see the block boundary")
            let mut guard = self.inner.write();
            guard.ingest_precomputed_batch(window, &values, self.opts);
        }
        self.run_batch_hooks();
        (trees.len() as u64, patterns)
    }

    /// Attaches instrumentation to the wrapped synopsis (see
    /// [`SketchTree::attach_metrics`]).
    pub fn attach_metrics(&self, metrics: std::sync::Arc<crate::metrics::CoreMetrics>) {
        self.inner.write().attach_metrics(metrics);
    }

    /// Merges another synopsis into the shared one under the write lock
    /// (see [`SketchTree::merge`] for semantics and the config-equality
    /// requirement).  Queries observe either the pre- or post-merge state,
    /// never a partial merge.
    pub fn merge(&self, other: &SketchTree) -> Result<(), &'static str> {
        self.inner.write().merge(other)?;
        self.run_batch_hooks();
        Ok(())
    }

    /// Runs `f` with mutable access to the label table (for building input
    /// trees or resolving query labels ahead of time).
    pub fn with_labels<R>(&self, f: impl FnOnce(&mut sketchtree_tree::LabelTable) -> R) -> R {
        let mut guard = self.inner.write();
        let before = guard.labels().len();
        let r = f(guard.labels_mut());
        // Newly interned labels get their canonical codes cached now, so
        // the shared-lock enumeration path never recomputes them per
        // pattern.
        guard.sync_label_codes();
        // Interning can flip a pattern from constant-folded-zero to a live
        // sketch lookup, so it is estimate-visible: invalidate epoch-keyed
        // caches.
        if guard.labels().len() != before {
            guard.bump_epoch();
        }
        r
    }

    /// The current synopsis epoch (see [`SketchTree::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch()
    }

    /// The durability cursor (see [`SketchTree::wal_seq`]).
    pub fn wal_seq(&self) -> u64 {
        self.inner.read().wal_seq()
    }

    /// Advances the durability cursor (see [`SketchTree::set_wal_seq`];
    /// monotone, does not bump the epoch).  Called by the server's
    /// write-ahead-log layer after a logged batch is applied.
    pub fn set_wal_seq(&self, seq: u64) {
        self.inner.write().set_wal_seq(seq);
    }

    /// `COUNT_ord` of a textual pattern (shared lock; concurrent with other
    /// queries).
    pub fn count_ordered(&self, pattern: &str) -> Result<f64, SketchTreeError> {
        self.inner.read().count_ordered(pattern)
    }

    /// Unordered `COUNT` of a textual pattern.
    pub fn count_unordered(&self, pattern: &str) -> Result<f64, SketchTreeError> {
        self.inner.read().count_unordered(pattern)
    }

    /// Estimates a count expression.
    pub fn estimate(&self, expr: &CountExpr) -> Result<f64, SketchTreeError> {
        self.inner.read().estimate(expr)
    }

    /// Trees ingested so far.
    pub fn trees_processed(&self) -> u64 {
        self.inner.read().trees_processed()
    }

    /// Pattern instances sketched so far.
    pub fn patterns_processed(&self) -> u64 {
        self.inner.read().patterns_processed()
    }

    /// Runs `f` with shared read access to the full synopsis API.
    pub fn read<R>(&self, f: impl FnOnce(&SketchTree) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketchtree::SketchTreeConfig;
    use sketchtree_sketch::SynopsisConfig;
    use sketchtree_tree::Tree;

    fn cfg() -> SketchTreeConfig {
        SketchTreeConfig {
            max_pattern_edges: 2,
            synopsis: SynopsisConfig {
                s1: 30,
                s2: 5,
                virtual_streams: 7,
                topk: 4,
                ..SynopsisConfig::default()
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        }
    }

    fn shared() -> SharedSketchTree {
        SharedSketchTree::new(SketchTree::new(cfg()))
    }

    #[test]
    fn concurrent_ingest_and_query() {
        let st = shared();
        let (a, b) = st.with_labels(|l| (l.intern("A"), l.intern("B")));
        let tree = Tree::node(a, vec![Tree::leaf(b)]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let st = st.clone();
                let tree = tree.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        st.ingest(&tree);
                        // Interleave reads; value is monotone noisy but must
                        // never error.
                        let _ = st.count_ordered("A(B)").expect("valid query");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(st.trees_processed(), 400);
        // All 400 instances of the single pattern are in the sketches
        // (updates commute regardless of interleaving).
        let est = st.count_ordered("A(B)").unwrap();
        assert!((est - 400.0).abs() < 40.0, "est {est}");
        assert_eq!(
            st.read(|s| s.exact_count_ordered("A(B)").unwrap()),
            400
        );
    }

    #[test]
    fn ingest_batch_matches_sequential_ingest() {
        let batched = shared();
        let sequential = shared();
        let (a, b, c) = batched.with_labels(|l| (l.intern("A"), l.intern("B"), l.intern("C")));
        sequential.with_labels(|l| {
            l.intern("A");
            l.intern("B");
            l.intern("C");
        });
        let trees: Vec<Tree> = (0..20)
            .map(|i| match i % 3 {
                0 => Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]),
                1 => Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]),
                _ => Tree::node(b, vec![Tree::leaf(c)]),
            })
            .collect();
        batched.ingest_batch(&trees);
        for t in &trees {
            sequential.ingest(t);
        }
        assert_eq!(batched.trees_processed(), 20);
        assert_eq!(
            batched.patterns_processed(),
            sequential.patterns_processed()
        );
        for q in ["A(B,C)", "A(B(C))", "B(C)"] {
            assert_eq!(
                batched.count_ordered(q).unwrap(),
                sequential.count_ordered(q).unwrap(),
                "query {q}"
            );
        }
        assert_eq!(
            batched.read(|s| s.tracked_heavy_hitters()),
            sequential.read(|s| s.tracked_heavy_hitters())
        );
    }

    #[test]
    fn batch_ingest_from_many_threads() {
        let st = shared();
        let (a, b) = st.with_labels(|l| (l.intern("A"), l.intern("B")));
        let tree = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b)]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let st = st.clone();
                let batch: Vec<Tree> = (0..25).map(|_| tree.clone()).collect();
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        st.ingest_batch(&batch);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(st.trees_processed(), 400);
        assert_eq!(st.read(|s| s.exact_count_ordered("A(B)").unwrap()), 800);
    }

    #[test]
    fn epoch_tracks_every_estimate_visible_change() {
        let st = shared();
        assert_eq!(st.epoch(), 0);
        // Interning a label is estimate-visible (a constant-folded-zero
        // pattern can become a live lookup), so it bumps.
        let (a, b) = st.with_labels(|l| (l.intern("A"), l.intern("B")));
        assert_eq!(st.epoch(), 1);
        // Re-interning the same labels changes nothing: no bump.
        st.with_labels(|l| l.intern("A"));
        assert_eq!(st.epoch(), 1);
        let tree = Tree::node(a, vec![Tree::leaf(b)]);
        st.ingest(&tree);
        assert_eq!(st.epoch(), 2);
        st.ingest_batch(&[tree.clone(), tree.clone()]);
        let post_batch = st.epoch();
        assert!(post_batch > 2, "batch ingest must advance the epoch");

        // Merge bumps (satellite: merge/MergeSnapshot must invalidate).
        let mut other = SketchTree::new(cfg());
        let (oa, ob) = (other.labels_mut().intern("A"), other.labels_mut().intern("B"));
        other.ingest(&Tree::node(oa, vec![Tree::leaf(ob)]));
        st.merge(&other).expect("configs match");
        assert_eq!(st.epoch(), post_batch + 1);

        // Restore-on-start lands at epoch 1, never 0: caches keyed on the
        // empty synopsis cannot alias the restored state.
        let bytes = st.read(crate::snapshot::write_snapshot);
        let restored = crate::snapshot::read_snapshot(&bytes).expect("snapshot readable");
        assert_eq!(restored.epoch(), 1);
    }

    #[test]
    fn batch_hooks_fire_on_batch_and_merge_with_post_state() {
        use std::sync::Mutex;
        let st = shared();
        let (a, b) = st.with_labels(|l| (l.intern("A"), l.intern("B")));
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        st.add_batch_hook(Arc::new(move |s: &SketchTree| {
            sink.lock().unwrap().push((s.epoch(), s.trees_processed()));
        }));
        let tree = Tree::node(a, vec![Tree::leaf(b)]);
        st.ingest_batch(&[tree.clone(), tree.clone()]);
        // Exactly one invocation per batch, observing the post-batch state.
        {
            let log = seen.lock().unwrap();
            assert_eq!(log.len(), 1);
            assert_eq!(log[0], (st.epoch(), 2));
        }
        let mut other = SketchTree::new(cfg());
        let (oa, ob) = (other.labels_mut().intern("A"), other.labels_mut().intern("B"));
        other.ingest(&Tree::node(oa, vec![Tree::leaf(ob)]));
        st.merge(&other).expect("configs match");
        let log = seen.lock().unwrap();
        assert_eq!(log.len(), 2, "merge fires hooks too");
        assert_eq!(log[1], (st.epoch(), 3));
    }

    #[test]
    fn clone_shares_state() {
        let st = shared();
        let a = st.with_labels(|l| l.intern("A"));
        let clone = st.clone();
        clone.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        assert_eq!(st.trees_processed(), 1);
        assert_eq!(st.patterns_processed(), clone.patterns_processed());
    }

    #[test]
    fn checkpoint_completes_while_batch_is_mid_ingest() {
        // chunk_size 1 bounds every lock window to one tree, so a
        // checkpoint (a read-side snapshot, exactly what the server's
        // periodic writer does) gets the lock between windows instead of
        // waiting out the whole batch.
        let st = SharedSketchTree::with_options(
            SketchTree::new(SketchTreeConfig {
                max_pattern_edges: 3,
                synopsis: SynopsisConfig {
                    s1: 30,
                    s2: 5,
                    virtual_streams: 7,
                    topk: 4,
                    ..SynopsisConfig::default()
                },
                ..SketchTreeConfig::default()
            }),
            crate::parallel::IngestOptions {
                threads: 2,
                chunk_size: 1,
            },
        );
        let (a, b, c) = st.with_labels(|l| (l.intern("A"), l.intern("B"), l.intern("C")));
        // Trees bushy enough that enumerating 1500 of them spans many
        // scheduler quanta even on one core.
        let tree = Tree::node(
            a,
            vec![
                Tree::node(b, vec![Tree::leaf(c), Tree::leaf(c)]),
                Tree::node(c, vec![Tree::leaf(b)]),
                Tree::leaf(b),
            ],
        );
        let n = 1500u64;
        let batch: Vec<Tree> = (0..n).map(|_| tree.clone()).collect();
        let writer = {
            let st = st.clone();
            std::thread::spawn(move || st.ingest_batch(&batch))
        };
        // Wait for the batch to be visibly in progress, then checkpoint.
        let mut mid_snapshot = None;
        loop {
            let t = st.trees_processed();
            if t > 0 && t < n {
                mid_snapshot = Some(st.read(crate::snapshot::write_snapshot));
                break;
            }
            if t == n {
                break;
            }
            std::thread::yield_now();
        }
        let (trees, _) = writer.join().expect("ingest thread must not panic");
        assert_eq!(trees, n);
        let bytes = mid_snapshot
            .expect("never saw the batch mid-ingest: lock windows are not bounded");
        // The mid-batch checkpoint is a valid snapshot of a strict prefix.
        let restored = crate::snapshot::read_snapshot(&bytes).expect("snapshot readable");
        assert!(restored.trees_processed() > 0);
        assert!(restored.trees_processed() < n);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// The tentpole guarantee, end to end through the snapshot
        /// encoder: batch ingest at 1, 2 and 8 threads (and whatever
        /// SKETCHTREE_INGEST_THREADS / available parallelism selects as
        /// the default) produces snapshots *byte-identical* to sequential
        /// per-tree ingest — including with probabilistic top-k sampling,
        /// where per-partition RNG state is the subtle cross-thread
        /// hazard.
        #[test]
        fn snapshot_parity_across_thread_counts(
            shapes in proptest::prop::collection::vec(arb_tree(), 1..24),
            topk_probability in proptest::prop_oneof![
                proptest::prelude::Just(u16::MAX),
                proptest::prelude::Just(u16::MAX / 3),
            ],
        ) {
            let config = SketchTreeConfig {
                max_pattern_edges: 3,
                synopsis: SynopsisConfig {
                    s1: 20,
                    s2: 5,
                    virtual_streams: 7,
                    topk: 4,
                    topk_probability,
                    ..SynopsisConfig::default()
                },
                ..SketchTreeConfig::default()
            };
            let build = || {
                let mut st = SketchTree::new(config.clone());
                for l in ["L0", "L1", "L2", "L3"] {
                    st.labels_mut().intern(l);
                }
                st
            };
            let trees: Vec<Tree> = shapes;
            let mut sequential = build();
            for t in &trees {
                sequential.ingest(t);
            }
            let expected = crate::snapshot::write_snapshot(&sequential);
            let thread_counts = [1usize, 2, 8, crate::parallel::default_ingest_threads()];
            for &threads in &thread_counts {
                let shared = SharedSketchTree::with_options(
                    build(),
                    crate::parallel::IngestOptions {
                        threads,
                        chunk_size: 3,
                    },
                );
                shared.ingest_batch(&trees);
                let got = shared.read(crate::snapshot::write_snapshot);
                proptest::prop_assert!(
                    got == expected,
                    "snapshot diverged at {threads} ingest threads \
                     ({} vs {} bytes)",
                    got.len(),
                    expected.len()
                );
            }
        }
    }

    /// Small random trees over four labels, matching the `build()` label
    /// table in the parity proptest.
    fn arb_tree() -> impl proptest::prelude::Strategy<Value = Tree> {
        use proptest::prelude::*;
        use sketchtree_tree::Label;
        let leaf = (0u32..4).prop_map(|l| Tree::leaf(Label(l)));
        leaf.prop_recursive(3, 12, 3, |inner| {
            ((0u32..4), prop::collection::vec(inner, 1..3))
                .prop_map(|(l, children)| Tree::node(Label(l), children))
        })
    }
}
