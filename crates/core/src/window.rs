//! Sliding-window pattern counting — an extension beyond the paper.
//!
//! The paper counts over the *entire* stream history.  Monitoring
//! applications usually ask about the recent past: "how many matches in
//! the last W documents?".  AMS deletion makes an **exact** sliding window
//! possible: keep the mapped values of the last `W` trees in a ring
//! buffer, and when a tree falls out of the window, subtract its pattern
//! instances from the sketches (`X −= ξ_v` per instance) — the synopsis
//! then *is* the window's synopsis, with every estimator and theorem of
//! the paper applying verbatim to the window.
//!
//! The price is the buffered window itself, `O(Σ patterns per tree in
//! window)` values — unavoidable for exact expiry (a value forgotten
//! cannot be un-counted).  For a W of thousands of documents this is a
//! few megabytes, far below the exact-counter baseline for the same
//! window.
//!
//! Top-k tracking is not used inside the window synopsis: the tracker's
//! delete condition interacts with expiry (an expired instance may already
//! have been deleted by the tracker), so the windowed variant keeps the
//! plain boosted sketches.  Windows are short; their self-join sizes are
//! correspondingly small, which is what the tracker would have bought.

use crate::mapping::Mapper;
use crate::sketchtree::{SketchTreeConfig, SketchTreeError};
use sketchtree_tree::{LabelTable, PruferSeq, Tree};
use sketchtree_sketch::StreamSynopsis;
use std::collections::VecDeque;

/// A synopsis over the last `W` trees of the stream.
pub struct WindowedSketchTree {
    config: SketchTreeConfig,
    window: usize,
    labels: LabelTable,
    mapper: Mapper,
    synopsis: StreamSynopsis,
    /// Mapped values of each tree still in the window, oldest first.
    buffered: VecDeque<Vec<u64>>,
    trees_seen: u64,
}

impl WindowedSketchTree {
    /// Creates a windowed synopsis over the last `window` trees.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(mut config: SketchTreeConfig, window: usize) -> Self {
        assert!(window > 0, "window must hold at least one tree");
        // Top-k is incompatible with expiry (see module docs).
        config.synopsis.topk = 0;
        let mapper = Mapper::new(config.fingerprint_degree, config.mapping_seed);
        let synopsis = StreamSynopsis::new(config.synopsis.clone());
        Self {
            config,
            window,
            labels: LabelTable::new(),
            mapper,
            synopsis,
            buffered: VecDeque::new(),
            trees_seen: 0,
        }
    }

    /// The label table for building input trees and queries.
    pub fn labels_mut(&mut self) -> &mut LabelTable {
        &mut self.labels
    }

    /// Read access to the label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Trees currently inside the window.
    pub fn window_len(&self) -> usize {
        self.buffered.len()
    }

    /// Total trees ever ingested.
    pub fn trees_seen(&self) -> u64 {
        self.trees_seen
    }

    /// Pattern values currently buffered (the expiry memory cost).
    pub fn buffered_values(&self) -> usize {
        self.buffered.iter().map(Vec::len).sum()
    }

    /// Ingests one tree; if the window is full, the oldest tree's patterns
    /// are deleted from the sketches first.
    pub fn ingest(&mut self, tree: &Tree) {
        if self.buffered.len() == self.window {
            let expired = self.buffered.pop_front().expect("window full");
            for v in expired {
                self.synopsis.delete(v);
            }
        }
        let k = self.config.max_pattern_edges;
        let mut values = Vec::new();
        crate::enumtree::enumerate_patterns_config(
            tree,
            k,
            self.config.include_single_nodes,
            |root, edges| {
                let pattern = tree.project(root, edges);
                let v = self.mapper.map_seq(&PruferSeq::encode(&pattern));
                self.synopsis.insert(v);
                values.push(v);
            },
        );
        self.buffered.push_back(values);
        self.trees_seen += 1;
    }

    /// `COUNT_ord(Q)` within the window for a concrete pattern tree.
    pub fn count_ordered_tree(&self, pattern: &Tree) -> f64 {
        self.synopsis.estimate_count(self.mapper.map_tree(pattern))
    }

    /// `COUNT_ord(Q)` within the window for a textual simple pattern.
    /// Unknown labels give exactly 0.
    ///
    /// Wildcard (`*`) and descendant (`//`) patterns return
    /// [`SketchTreeError::SummaryRequired`]: rewriting them needs the
    /// structural summary, and the windowed synopsis keeps none (summary
    /// entries cannot be expired the way sketch counters can).
    pub fn count_ordered(&self, pattern: &str) -> Result<f64, SketchTreeError> {
        let q = crate::query::parse_pattern(pattern)?;
        if !q.is_simple() {
            return Err(SketchTreeError::SummaryRequired);
        }
        Ok(match q.to_tree(&self.labels) {
            None => 0.0,
            Some(t) => self.count_ordered_tree(&t),
        })
    }

    /// Synopsis memory plus the buffered-window memory, in bytes.
    ///
    /// The buffer is charged at *capacity*, not length: every buffered
    /// `Vec<u64>` owns `capacity × 8` bytes of heap whether or not its
    /// tail is in use, and the `VecDeque` ring is `capacity` slots of
    /// `Vec` headers (occupied or not).
    pub fn memory_bytes(&self) -> usize {
        let heap: usize = self
            .buffered
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<u64>())
            .sum();
        let ring = self.buffered.capacity() * std::mem::size_of::<Vec<u64>>();
        self.synopsis.memory_bytes() + heap + ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_sketch::SynopsisConfig;

    fn build(window: usize) -> WindowedSketchTree {
        WindowedSketchTree::new(
            SketchTreeConfig {
                max_pattern_edges: 2,
                synopsis: SynopsisConfig {
                    s1: 60,
                    s2: 5,
                    virtual_streams: 7,
                    ..SynopsisConfig::default()
                },
                ..SketchTreeConfig::default()
            },
            window,
        )
    }

    #[test]
    fn window_expires_old_counts() {
        let mut w = build(10);
        let (a, b, c) = {
            let l = w.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"))
        };
        let ab = Tree::node(a, vec![Tree::leaf(b)]);
        let ac = Tree::node(a, vec![Tree::leaf(c)]);
        // Fill the window with A(B)...
        for _ in 0..10 {
            w.ingest(&ab);
        }
        let est_ab = w.count_ordered("A(B)").unwrap();
        assert!((est_ab - 10.0).abs() < 3.0, "est {est_ab}");
        // ...then push it entirely out with A(C).
        for _ in 0..10 {
            w.ingest(&ac);
        }
        assert_eq!(w.window_len(), 10);
        assert_eq!(w.trees_seen(), 20);
        let gone = w.count_ordered("A(B)").unwrap();
        assert!(gone.abs() < 2.0, "expired count still visible: {gone}");
        let est_ac = w.count_ordered("A(C)").unwrap();
        assert!((est_ac - 10.0).abs() < 3.0, "est {est_ac}");
    }

    #[test]
    fn partial_expiry_counts_recent_only() {
        let mut w = build(6);
        let (a, b) = {
            let l = w.labels_mut();
            (l.intern("A"), l.intern("B"))
        };
        let t = Tree::node(a, vec![Tree::leaf(b)]);
        for _ in 0..9 {
            w.ingest(&t);
        }
        // Only the 6 in-window instances count.
        let est = w.count_ordered("A(B)").unwrap();
        assert!((est - 6.0).abs() < 2.0, "est {est}");
    }

    #[test]
    fn empty_window_and_unknown_labels() {
        let mut w = build(4);
        assert_eq!(w.count_ordered("X(Y)").unwrap(), 0.0);
        let a = w.labels_mut().intern("A");
        w.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        assert_eq!(w.count_ordered("NOPE").unwrap(), 0.0);
    }

    #[test]
    fn buffered_memory_is_bounded_by_window() {
        let mut w = build(5);
        let a = w.labels_mut().intern("A");
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        for _ in 0..100 {
            w.ingest(&t);
        }
        // 5 trees × 3 patterns (2 single edges + 1 pair at k=2).
        assert_eq!(w.buffered_values(), 15);
        assert_eq!(w.window_len(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        build(0);
    }

    #[test]
    fn wildcard_and_descendant_patterns_error_instead_of_panicking() {
        let mut w = build(4);
        let (a, b) = {
            let l = w.labels_mut();
            (l.intern("A"), l.intern("B"))
        };
        w.ingest(&Tree::node(a, vec![Tree::leaf(b)]));
        // Regression: these used to assert!(q.is_simple()) and crash the
        // caller.  Both must surface as proper errors.
        assert_eq!(
            w.count_ordered("A(*)"),
            Err(SketchTreeError::SummaryRequired)
        );
        assert_eq!(
            w.count_ordered("A(//B)"),
            Err(SketchTreeError::SummaryRequired)
        );
        // Parse errors still map through.
        assert!(matches!(
            w.count_ordered("A(("),
            Err(SketchTreeError::Query(_))
        ));
        // Simple patterns unaffected.
        assert!(w.count_ordered("A(B)").is_ok());
    }

    #[test]
    fn memory_accounts_for_buffer_capacity() {
        let mut w = build(5);
        let a = w.labels_mut().intern("A");
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
        for _ in 0..100 {
            w.ingest(&t);
        }
        // Regression: the old accounting charged len × 8 and ignored both
        // Vec capacity slack and the per-Vec/ring overhead.  The report
        // must be at least the naive lower bound…
        let buffered_payload = w.buffered_values() * std::mem::size_of::<u64>();
        let ring_headers = w.window_len() * std::mem::size_of::<Vec<u64>>();
        assert!(
            w.memory_bytes() >= w.synopsis.memory_bytes() + buffered_payload + ring_headers,
            "reported {} < naive lower bound {}",
            w.memory_bytes(),
            w.synopsis.memory_bytes() + buffered_payload + ring_headers
        );
        // …and capacity-based accounting can only grow the number.
        assert!(w.memory_bytes() > w.synopsis.memory_bytes() + buffered_payload);
    }
}
