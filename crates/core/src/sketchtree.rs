//! The SketchTree synopsis — Algorithms 1 and 2 behind one API.
//!
//! [`SketchTree`] is the object the paper's streaming model (Figure 2)
//! describes: trees go in one at a time ([`SketchTree::ingest`], Algorithm
//! 1 — EnumTree, Prüfer encoding, one-dimensional mapping, sketch update,
//! top-k processing), and at *any* moment *any* tree-pattern count query can
//! be answered approximately (Algorithm 2 plus the Section 4 expression
//! estimators):
//!
//! * [`SketchTree::count_ordered`] — `COUNT_ord(Q)` (Theorem 1), with `*`
//!   and `//` queries rewritten through the structural summary
//!   (Section 6.2);
//! * [`SketchTree::count_unordered`] — `COUNT(Q)` over all distinct ordered
//!   arrangements (Section 3.3, Theorem 2);
//! * [`SketchTree::estimate`] — arbitrary `+ − ×` expressions over ordered
//!   and unordered counts ([`CountExpr`], Section 4);
//! * diagnostics: residual self-join size, tracked heavy hitters, memory.
//!
//! With [`SketchTreeConfig::track_exact`] the synopsis additionally keeps
//! the deterministic one-counter-per-pattern baseline in parallel, which is
//! how the experiment harness measures relative errors — at the memory cost
//! the paper's introduction warns about.

use crate::enumtree::{enumerate_patterns_config, enumerate_patterns_config_with, EnumArena};
use crate::exact::ExactCounter;
use crate::mapping::Mapper;
use crate::metrics::{relative_spread, CoreMetrics, SketchHealth};
use crate::query::{parse_pattern, QueryError, QueryPattern};
use crate::summary::{ExpandError, ExpandLimits, StructuralSummary};
use crate::unordered::{arrangements, ArrangementError};
use sketchtree_sketch::expr::Term;
use sketchtree_sketch::virtual_streams::SynopsisError;
use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};
use sketchtree_tree::{Label, LabelTable, NodeId, PruferSeq, Tree};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`SketchTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchTreeConfig {
    /// Maximum pattern size `k` in edges for EnumTree (paper: 6 for
    /// TREEBANK, 4 for DBLP).
    pub max_pattern_edges: usize,
    /// Also count single-node patterns (label frequencies). The paper's
    /// EnumTree emits patterns with ≥ 1 edge; default false.
    pub include_single_nodes: bool,
    /// Rabin fingerprint degree for the one-dimensional mapping
    /// (paper: 31).
    pub fingerprint_degree: u32,
    /// Seed for the mapping polynomial (independent of the sketch seeds).
    pub mapping_seed: u64,
    /// Sketch array / virtual stream / top-k configuration.
    pub synopsis: SynopsisConfig,
    /// Maintain the structural summary enabling `*` and `//` queries.
    pub maintain_summary: bool,
    /// Track exact counts alongside the sketches (ground truth for
    /// experiments; memory grows with distinct patterns).
    pub track_exact: bool,
    /// Cap on distinct ordered arrangements for unordered queries.
    pub max_arrangements: usize,
    /// Limits for `*` / `//` expansion.
    pub expand_limits: ExpandLimits,
}

impl Default for SketchTreeConfig {
    fn default() -> Self {
        Self {
            max_pattern_edges: 4,
            include_single_nodes: false,
            fingerprint_degree: 31,
            mapping_seed: 0xF16E_12AB,
            synopsis: SynopsisConfig::default(),
            maintain_summary: true,
            track_exact: false,
            max_arrangements: 1024,
            expand_limits: ExpandLimits::default(),
        }
    }
}

/// Errors surfaced by [`SketchTree`] queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchTreeError {
    /// Pattern text failed to parse.
    Query(QueryError),
    /// Estimation failed (bad expression or insufficient ξ independence).
    Synopsis(SynopsisError),
    /// Unordered expansion exceeded its cap.
    Arrangement(ArrangementError),
    /// `*` / `//` expansion exceeded its cap.
    Expand(ExpandError),
    /// A `*` or `//` query was asked but the summary is disabled.
    SummaryRequired,
    /// The query pattern has more edges than EnumTree enumerates — the
    /// synopsis has never seen such patterns, so any estimate would be
    /// meaningless noise (the paper defers counting patterns larger than k
    /// to future work; we surface it as an explicit error).
    PatternTooLarge {
        /// Edges in the query.
        edges: usize,
        /// The synopsis' `max_pattern_edges`.
        max: usize,
    },
    /// Exact counts were requested but `track_exact` is off.
    ExactTrackingDisabled,
}

impl fmt::Display for SketchTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchTreeError::Query(e) => write!(f, "query parse error: {e}"),
            SketchTreeError::Synopsis(e) => write!(f, "estimation error: {e}"),
            SketchTreeError::Arrangement(e) => write!(f, "{e}"),
            SketchTreeError::Expand(e) => write!(f, "{e}"),
            SketchTreeError::SummaryRequired => write!(
                f,
                "query uses `*` or `//` but the structural summary is disabled \
                 (set SketchTreeConfig::maintain_summary)"
            ),
            SketchTreeError::ExactTrackingDisabled => {
                write!(f, "exact counts unavailable: SketchTreeConfig::track_exact is off")
            }
            SketchTreeError::PatternTooLarge { edges, max } => write!(
                f,
                "query pattern has {edges} edges but the synopsis only counts patterns \
                 with up to {max} (SketchTreeConfig::max_pattern_edges)"
            ),
        }
    }
}

impl std::error::Error for SketchTreeError {}

impl From<QueryError> for SketchTreeError {
    fn from(e: QueryError) -> Self {
        SketchTreeError::Query(e)
    }
}
impl From<SynopsisError> for SketchTreeError {
    fn from(e: SynopsisError) -> Self {
        SketchTreeError::Synopsis(e)
    }
}
impl From<ArrangementError> for SketchTreeError {
    fn from(e: ArrangementError) -> Self {
        SketchTreeError::Arrangement(e)
    }
}
impl From<ExpandError> for SketchTreeError {
    fn from(e: ExpandError) -> Self {
        SketchTreeError::Expand(e)
    }
}

/// Exported structural-summary parts: sorted labels and transitions
/// (see `crate::snapshot`).
pub type SummaryParts = (
    Vec<sketchtree_tree::Label>,
    Vec<(sketchtree_tree::Label, sketchtree_tree::Label)>,
);

/// A count expression over textual patterns — the user-facing form of the
/// Section 4 grammar, with both ordered and unordered leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountExpr {
    /// `COUNT_ord(pattern)`.
    Ordered(String),
    /// `COUNT(pattern)` — unordered.
    Unordered(String),
    /// Sum.
    Add(Box<CountExpr>, Box<CountExpr>),
    /// Difference.
    Sub(Box<CountExpr>, Box<CountExpr>),
    /// Product.
    Mul(Box<CountExpr>, Box<CountExpr>),
}

#[allow(clippy::should_implement_trait)] // builder-style add/sub/mul by design
impl CountExpr {
    /// `COUNT_ord(pattern)`.
    pub fn ordered(pattern: impl Into<String>) -> Self {
        CountExpr::Ordered(pattern.into())
    }

    /// `COUNT(pattern)` (unordered).
    pub fn unordered(pattern: impl Into<String>) -> Self {
        CountExpr::Unordered(pattern.into())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: CountExpr) -> Self {
        CountExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`.
    pub fn sub(self, rhs: CountExpr) -> Self {
        CountExpr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self × rhs`.
    pub fn mul(self, rhs: CountExpr) -> Self {
        CountExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for CountExpr {
    /// Renders in the syntax [`crate::exprparse::parse_expr`] accepts, so
    /// `parse_expr(&e.to_string())` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountExpr::Ordered(p) => write!(f, "COUNT_ord({p})"),
            CountExpr::Unordered(p) => write!(f, "COUNT({p})"),
            CountExpr::Add(a, b) => write!(f, "({a} + {b})"),
            CountExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            CountExpr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

/// Reusable buffers for the allocation-free enumerate → fingerprint
/// pipeline behind [`SketchTree::ingest`] and
/// [`SketchTree::enumerate_values_into`].
///
/// Holds the [`EnumArena`] plus the pattern-walk, symbol and value buffers
/// of one worker.  Everything is cleared — never freed — between trees, so
/// after warm-up the per-tree pipeline performs no heap allocation at all:
/// enumeration writes spans into the arena pool, each pattern's canonical
/// symbols are appended to one contiguous buffer, and a single batch
/// fingerprint pass maps every pattern of the tree.
#[derive(Debug, Default)]
pub struct EnumScratch {
    arena: EnumArena,
    /// Pattern nodes in pattern postorder: `(node, parent, is_leaf)`.
    post: Vec<(NodeId, Option<NodeId>, bool)>,
    /// Extended-postorder number per data-tree node (of the current
    /// pattern only — stale entries are never read because parents always
    /// belong to the pattern being emitted).
    ext_of: Vec<u32>,
    lps: Vec<u64>,
    nps: Vec<u64>,
    /// All patterns' canonical symbols for the current tree, back to back.
    symbols: Vec<u64>,
    /// Exclusive end offset of each pattern's symbols in `symbols`.
    ends: Vec<u32>,
    /// Mapped values of the current tree (the fast ingest path's output).
    values: Vec<u64>,
}

impl EnumScratch {
    /// Empty scratch; buffers grow to steady state over the first trees.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Walks a pattern's edge list into pattern postorder.
///
/// EnumTree emits every pattern's edges in a canonical nested layout —
/// the root's child edges first (sibling order), then each child's
/// sub-pattern edge list in order, recursively — so the pattern's shape
/// can be parsed straight off the edge slice: the edges parented at `v`
/// form a contiguous run at the cursor.  Recursion depth is bounded by
/// the pattern edge count (`max_pattern_edges`, single digits).
fn pattern_postorder(
    edges: &[(NodeId, NodeId)],
    v: NodeId,
    parent: Option<NodeId>,
    pos: &mut usize,
    post: &mut Vec<(NodeId, Option<NodeId>, bool)>,
) {
    let start = *pos;
    // lint:allow(L1, reason = "guarded by the *pos < edges.len() test on the same line")
    while *pos < edges.len() && edges[*pos].0 == v {
        *pos += 1;
    }
    let end = *pos;
    for i in start..end {
        // lint:allow(L1, reason = "start..end indexes the run just scanned")
        pattern_postorder(edges, edges[i].1, Some(v), pos, post);
    }
    post.push((v, parent, start == end));
}

/// The SketchTree streaming synopsis.
pub struct SketchTree {
    config: SketchTreeConfig,
    labels: LabelTable,
    mapper: Mapper,
    /// Canonical code per interned label id ([`Mapper::label_code`] of the
    /// label's name), extended lazily as the table grows.  Pure cache —
    /// rebuilt from the table on restore, never persisted.
    label_codes: Vec<u64>,
    synopsis: StreamSynopsis,
    summary: Option<StructuralSummary>,
    exact: Option<ExactCounter>,
    trees_processed: u64,
    patterns_processed: u64,
    /// Monotone state-version counter: bumped on every mutation that can
    /// change an estimate (ingest, merge, restore, label interning via
    /// [`SketchTree::bump_epoch`]).  In-memory only — a restored synopsis
    /// starts at 1 so caches keyed on epoch 0 (the empty synopsis) never
    /// alias a restored state.
    epoch: u64,
    /// Durability cursor: sequence number of the last write-ahead-log
    /// batch folded into this synopsis.  Recorded in snapshots (format
    /// v2) so recovery knows which WAL frames a checkpoint already
    /// covers.  Not estimate-visible — setting it does *not* bump the
    /// epoch — and never advanced by the ingest paths themselves; only
    /// the server's logging layer moves it.
    wal_seq: u64,
    metrics: Option<Arc<CoreMetrics>>,
    /// Hot-path scratch for [`SketchTree::ingest`].  Pure buffers — never
    /// persisted, never compared; taken out and put back around each
    /// ingest so the enumerate pipeline can borrow `&self` concurrently.
    scratch: EnumScratch,
}

impl fmt::Debug for SketchTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SketchTree")
            .field("trees_processed", &self.trees_processed)
            .field("patterns_processed", &self.patterns_processed)
            .field("labels", &self.labels.len())
            .field("memory_bytes", &self.memory_bytes())
            .finish()
    }
}

impl SketchTree {
    /// Creates an empty synopsis.
    pub fn new(config: SketchTreeConfig) -> Self {
        let mapper = Mapper::new(config.fingerprint_degree, config.mapping_seed);
        let synopsis = StreamSynopsis::new(config.synopsis.clone());
        let summary = config.maintain_summary.then(StructuralSummary::new);
        let exact = config.track_exact.then(ExactCounter::new);
        Self {
            config,
            labels: LabelTable::new(),
            mapper,
            label_codes: Vec::new(),
            synopsis,
            summary,
            exact,
            trees_processed: 0,
            patterns_processed: 0,
            epoch: 0,
            wal_seq: 0,
            metrics: None,
            scratch: EnumScratch::new(),
        }
    }

    /// Attaches instrumentation: subsequent ingests and queries update the
    /// given [`CoreMetrics`] handles.  Without an attachment (the default)
    /// the pipeline skips every instrumentation branch, so unmonitored
    /// synopses pay nothing.
    pub fn attach_metrics(&mut self, metrics: Arc<CoreMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The configuration.
    pub fn config(&self) -> &SketchTreeConfig {
        &self.config
    }

    /// The label table (trees ingested must intern their labels here).
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Mutable label table access for building input trees.
    pub fn labels_mut(&mut self) -> &mut LabelTable {
        &mut self.labels
    }

    /// Number of trees ingested.
    pub fn trees_processed(&self) -> u64 {
        self.trees_processed
    }

    /// Number of pattern instances processed (the mapped-stream length).
    pub fn patterns_processed(&self) -> u64 {
        self.patterns_processed
    }

    /// The synopsis epoch: a monotone counter identifying the current
    /// estimate-visible state.  Two reads at the same epoch are guaranteed
    /// to see bit-identical estimates for any fixed query, so the epoch is
    /// a sound cache key for `(query, epoch) → estimate` result caches and
    /// the version stamped onto pushed standing-query updates.
    ///
    /// Bumps on every ingest path, on [`SketchTree::merge`], and on
    /// restore (a restored synopsis starts at 1, never 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The durability cursor: sequence number of the last write-ahead-log
    /// batch whose effects are folded into this synopsis (0 when no WAL
    /// is in use).  Persisted in snapshots so recovery can skip frames a
    /// checkpoint already covers and replay only the tail.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Advances the durability cursor to `seq` (monotone — lower values
    /// are ignored).  Deliberately does **not** bump the epoch: the
    /// cursor is bookkeeping about persistence, not estimate-visible
    /// state, so snapshot byte-parity between WAL-logged and direct
    /// ingest holds everywhere except this one field.
    pub fn set_wal_seq(&mut self, seq: u64) {
        if seq > self.wal_seq {
            self.wal_seq = seq;
        }
    }

    /// Advances the epoch without ingesting.  For callers that mutate
    /// estimate-visible state through a side door — e.g. interning labels,
    /// which can turn a constant-folded-to-zero pattern into a live sketch
    /// lookup — and need epoch-keyed caches invalidated.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// A version stamp for the *structure* a compiled query plan depends
    /// on: the label table (pattern labels resolve through it) and the
    /// structural summary (wildcard/descendant queries expand through it).
    /// Counts, unlike structure, don't invalidate a compiled plan — atoms
    /// and lowered terms stay valid across ingests that add no new label
    /// or transition, which is what makes standing-query re-evaluation
    /// O(registered queries) per batch instead of O(query work).
    pub fn structure_version(&self) -> (u64, u64) {
        (
            self.labels.len() as u64,
            self.summary.as_ref().map_or(0, StructuralSummary::version),
        )
    }

    /// The exact baseline, when `track_exact` is enabled.
    pub fn exact(&self) -> Option<&ExactCounter> {
        self.exact.as_ref()
    }

    /// The structural summary, when maintained.
    pub fn summary(&self) -> Option<&StructuralSummary> {
        self.summary.as_ref()
    }

    /// Maps a pattern tree to its one-dimensional value (`PF(LPS.NPS)` with
    /// the Rabin fingerprint as `PF`).
    ///
    /// LPS symbols use *canonical* label codes — seed-derived fingerprints
    /// of the label **names** ([`Mapper::label_code`]) rather than interned
    /// ids — so the value depends only on the pattern's shape, its label
    /// strings and the mapping seed, never on the order this synopsis
    /// happened to intern labels.  Two synopses with the same configuration
    /// therefore map identical patterns to identical values even when their
    /// label tables differ, which is what makes their sketch counters
    /// addable ([`SketchTree::merge`]).
    pub fn map_pattern(&self, pattern: &Tree) -> u64 {
        self.map_seq_canonical(&PruferSeq::encode(pattern))
    }

    /// Maps an encoded sequence through the canonical label coding.
    fn map_seq_canonical(&self, seq: &PruferSeq) -> u64 {
        self.mapper.map_symbols(&canonical_symbols(
            &self.mapper,
            &self.labels,
            &self.label_codes,
            seq,
        ))
    }

    /// Extends the label-code cache to cover every currently interned
    /// label.  Called on the `&mut self` ingest paths (and by
    /// [`crate::concurrent::SharedSketchTree`] after batch interning);
    /// `&self` query paths fall back to computing codes for any label
    /// interned since.
    pub(crate) fn sync_label_codes(&mut self) {
        for i in self.label_codes.len()..self.labels.len() {
            let name = self.labels.name(sketchtree_tree::Label(i as u32));
            self.label_codes.push(self.mapper.label_code(name));
        }
    }

    /// Ingests one data tree — Algorithm 1, on the allocation-free hot
    /// path: arena-backed enumeration, direct canonical-symbol emission
    /// (no pattern projection, no intermediate [`PruferSeq`]) and one
    /// batch fingerprint pass per tree.  Produces bit-identical synopsis
    /// state to the observer path ([`SketchTree::ingest_with`]) — same
    /// values, same stream order.
    pub fn ingest(&mut self, tree: &Tree) {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        if let Some(s) = &mut self.summary {
            s.observe(tree);
        }
        self.sync_label_codes();
        // Take the scratch out so the `&self` enumeration pipeline and the
        // `&mut` scratch coexist; put it back (buffers warm) afterwards.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut values = std::mem::take(&mut scratch.values);
        values.clear();
        self.enumerate_values_into(tree, &mut scratch, &mut values);
        for &value in &values {
            self.synopsis.insert(value);
            if let Some(e) = &mut self.exact {
                e.record(value);
            }
        }
        let patterns = values.len() as u64;
        scratch.values = values;
        self.scratch = scratch;
        self.patterns_processed += patterns;
        self.trees_processed += 1;
        self.epoch += 1;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.ingest_trees.inc();
            m.ingest_patterns.add(patterns);
            m.ingest_seconds.observe_duration(t0.elapsed());
        }
    }

    /// Ingests one data tree, invoking `observer(value, seq)` for every
    /// pattern instance (hook for experiment harnesses that need the raw
    /// mapped stream).
    ///
    /// This is the legacy per-pattern pipeline — project, Prüfer-encode,
    /// map — kept as the executable specification of Algorithm 1: the
    /// fast [`SketchTree::ingest`] path must produce the identical value
    /// sequence (enforced by the core parity tests).
    pub fn ingest_with(&mut self, tree: &Tree, mut observer: impl FnMut(u64, &PruferSeq)) {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        if let Some(s) = &mut self.summary {
            s.observe(tree);
        }
        self.sync_label_codes();
        let k = self.config.max_pattern_edges;
        let include_single = self.config.include_single_nodes;
        // Split borrows for the closure.
        let mapper = &self.mapper;
        let labels = &self.labels;
        let label_codes = &self.label_codes;
        let synopsis = &mut self.synopsis;
        let exact = &mut self.exact;
        let mut patterns = 0u64;
        enumerate_patterns_config(tree, k, include_single, |root, edges| {
            let pattern = tree.project(root, edges);
            let seq = PruferSeq::encode(&pattern);
            let value = mapper.map_symbols(&canonical_symbols(mapper, labels, label_codes, &seq));
            synopsis.insert(value);
            if let Some(e) = exact {
                e.record(value);
            }
            observer(value, &seq);
            patterns += 1;
        });
        self.patterns_processed += patterns;
        self.trees_processed += 1;
        self.epoch += 1;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.ingest_trees.inc();
            m.ingest_patterns.add(patterns);
            m.ingest_seconds.observe_duration(t0.elapsed());
        }
    }

    /// Enumerates `tree`'s pattern instances and maps each to its stream
    /// value, without touching any synopsis state.
    ///
    /// This is the read-only half of Algorithm 1: enumeration, projection,
    /// Prüfer encoding and fingerprint mapping only need `&self`, so
    /// callers holding shared access (e.g. several producer threads behind
    /// one lock) can do the expensive work concurrently and later apply
    /// the values with [`SketchTree::ingest_precomputed`].  The value
    /// order matches [`SketchTree::ingest`] exactly.
    pub fn enumerate_values(&self, tree: &Tree) -> Vec<u64> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let mut scratch = EnumScratch::new();
        let mut values = Vec::new();
        self.enumerate_values_into(tree, &mut scratch, &mut values);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.enumerate_seconds.observe_duration(t0.elapsed());
        }
        values
    }

    /// [`SketchTree::enumerate_values`] with caller-owned scratch: appends
    /// tree's pattern values to `out` in exact sequential ingest order,
    /// reusing `scratch`'s buffers so a worker that processes many trees
    /// allocates nothing after warm-up.
    ///
    /// This is the hot half of Algorithm 1 rebuilt without intermediate
    /// structures: for every pattern the arena hands back an edge slice,
    /// the extended-Prüfer numbering is computed straight off it (no
    /// projected [`Tree`], no [`PruferSeq`]), canonical symbols accumulate
    /// in one contiguous buffer, and a single table-driven Rabin pass
    /// fingerprints the whole tree's patterns at once.
    pub fn enumerate_values_into(
        &self,
        tree: &Tree,
        scratch: &mut EnumScratch,
        out: &mut Vec<u64>,
    ) {
        let mapper = &self.mapper;
        let labels = &self.labels;
        let codes = &self.label_codes;
        let code_of = |l: Label| {
            codes
                .get(l.0 as usize)
                .copied()
                .unwrap_or_else(|| mapper.label_code(labels.name(l)))
        };
        let EnumScratch {
            arena,
            post,
            ext_of,
            lps,
            nps,
            symbols,
            ends,
            values: _,
        } = scratch;
        symbols.clear();
        ends.clear();
        ext_of.clear();
        ext_of.resize(tree.len(), 0);
        enumerate_patterns_config_with(
            arena,
            tree,
            self.config.max_pattern_edges,
            self.config.include_single_nodes,
            |root, edges| {
                post.clear();
                let mut pos = 0usize;
                pattern_postorder(edges, root, None, &mut pos, post);
                debug_assert_eq!(pos, edges.len(), "pattern edges not in canonical layout");
                // Extended-postorder numbering: each pattern leaf's dummy
                // child takes the number right before the leaf itself.
                let mut counter = 0u32;
                for &(node, _, leaf) in post.iter() {
                    if leaf {
                        counter += 1;
                    }
                    counter += 1;
                    // lint:allow(L1, reason = "pattern nodes are NodeIds of `tree`; ext_of is sized tree.len()")
                    ext_of[node.index()] = counter;
                }
                // Positions 1..m-1 of the extended Prüfer pair, in order:
                // per postorder node, the dummy entry (leaves), then the
                // node's own entry (non-roots).
                lps.clear();
                nps.clear();
                for &(node, parent, leaf) in post.iter() {
                    if leaf {
                        lps.push(code_of(tree.label(node)));
                        // lint:allow(L1, reason = "ext_of[node] was just assigned in the numbering pass")
                        nps.push(u64::from(ext_of[node.index()]));
                    }
                    if let Some(p) = parent {
                        lps.push(code_of(tree.label(p)));
                        // lint:allow(L1, reason = "parents are pattern nodes numbered in this same pass")
                        nps.push(u64::from(ext_of[p.index()]));
                    }
                }
                symbols.extend_from_slice(lps);
                symbols.extend_from_slice(nps);
                ends.push(
                    // lint:allow(L1, reason = "deliberate cap: a symbol buffer past u32 offsets is unreachable for in-memory trees")
                    u32::try_from(symbols.len()).expect("symbol buffer exceeds u32 offsets"),
                );
            },
        );
        mapper.map_symbol_segments(symbols, ends, out);
    }

    /// Ingests one tree whose pattern values were precomputed by
    /// [`SketchTree::enumerate_values`] on this same synopsis.
    ///
    /// Equivalent to [`SketchTree::ingest`] — same sketch updates in the
    /// same order, same counters, same summary observation — but the
    /// exclusive borrow only covers the cheap insertions.
    pub fn ingest_precomputed(&mut self, tree: &Tree, values: &[u64]) {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        if let Some(s) = &mut self.summary {
            s.observe(tree);
        }
        for &value in values {
            self.synopsis.insert(value);
            if let Some(e) = &mut self.exact {
                e.record(value);
            }
        }
        self.patterns_processed += values.len() as u64;
        self.trees_processed += 1;
        self.epoch += 1;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.ingest_trees.inc();
            m.ingest_patterns.add(values.len() as u64);
            m.insert_seconds.observe_duration(t0.elapsed());
        }
    }

    /// Enumerates pattern values for a whole batch of trees, fanning the
    /// per-tree work of [`SketchTree::enumerate_values`] across
    /// `opts.threads` workers with dynamic claiming.
    ///
    /// Output position `i` holds tree `i`'s values in the exact order
    /// sequential enumeration produces, regardless of thread count.  When
    /// metrics are attached, the ingest queue-depth gauge tracks the
    /// unclaimed backlog.
    pub fn enumerate_values_batch(
        &self,
        trees: &[Tree],
        opts: crate::parallel::IngestOptions,
    ) -> Vec<Vec<u64>> {
        let depth = self.metrics.as_ref().map(|m| &*m.ingest_queue_depth);
        crate::parallel::map_indexed_with(
            opts.threads,
            trees,
            EnumScratch::new,
            |scratch, t| {
                let t0 = self.metrics.as_ref().map(|_| Instant::now());
                let mut values = Vec::new();
                self.enumerate_values_into(t, scratch, &mut values);
                if let (Some(m), Some(t0)) = (&self.metrics, t0) {
                    m.enumerate_seconds.observe_duration(t0.elapsed());
                }
                values
            },
            depth,
        )
    }

    /// Ingests a batch of trees whose pattern values were precomputed by
    /// [`SketchTree::enumerate_values_batch`] (or per-tree
    /// [`SketchTree::enumerate_values`]) on this same synopsis.
    ///
    /// Sketch insertion is sharded by virtual-stream partition: the
    /// batch's values are split into per-partition queues (in stream
    /// order) and each partition's queue is applied through its exclusive
    /// [`sketchtree_sketch::virtual_streams::SynopsisShard`] by exactly
    /// one worker.  Because a partition's state never depended on other
    /// partitions' values, the resulting synopsis is **bit-identical** to
    /// ingesting the same trees sequentially — at every `opts.threads`.
    ///
    /// The structural summary and the optional exact baseline are
    /// order-insensitive and updated on the calling thread.
    pub fn ingest_precomputed_batch(
        &mut self,
        trees: &[Tree],
        values: &[Vec<u64>],
        opts: crate::parallel::IngestOptions,
    ) {
        debug_assert_eq!(trees.len(), values.len());
        let start = self.metrics.as_ref().map(|_| Instant::now());
        if let Some(s) = &mut self.summary {
            for t in trees {
                s.observe(t);
            }
        }
        if let Some(e) = &mut self.exact {
            for vs in values {
                for &v in vs {
                    e.record(v);
                }
            }
        }
        let total: u64 = values.iter().map(|v| v.len() as u64).sum();
        // Split the batch into per-partition queues, preserving stream
        // order within each partition — the only order a partition's
        // state ever observed.
        let mut queues: Vec<Vec<u64>> = vec![Vec::new(); self.synopsis.partition_count()];
        for vs in values {
            for &v in vs {
                if let Some(q) = queues.get_mut(self.synopsis.partition_of(v)) {
                    q.push(v);
                }
            }
        }
        let shard_seconds = self
            .metrics
            .as_ref()
            .map(|m| Arc::clone(&m.shard_insert_seconds));
        let work: Vec<_> = self
            .synopsis
            .shards()
            .into_iter()
            .map(|shard| {
                let queue = queues
                    .get_mut(shard.index())
                    .map(std::mem::take)
                    .unwrap_or_default();
                (shard, queue)
            })
            .filter(|(_, queue)| !queue.is_empty())
            .collect();
        crate::parallel::run_partitioned(opts.threads, work, |(mut shard, queue)| {
            let t0 = Instant::now();
            for v in queue {
                shard.insert(v);
            }
            if let Some(h) = &shard_seconds {
                h.observe_duration(t0.elapsed());
            }
        });
        self.synopsis.note_inserted(total);
        self.patterns_processed += total;
        self.trees_processed += trees.len() as u64;
        self.epoch += 1;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.ingest_trees.add(trees.len() as u64);
            m.ingest_patterns.add(total);
            m.insert_seconds.observe_duration(t0.elapsed());
        }
    }

    /// Resolves a textual pattern into the distinct concrete pattern trees
    /// it denotes: itself if simple, its summary expansion otherwise.
    fn resolve(&self, text: &str) -> Result<Vec<Tree>, SketchTreeError> {
        let q = parse_pattern(text)?;
        self.resolve_parsed(&q)
    }

    fn resolve_parsed(&self, q: &QueryPattern) -> Result<Vec<Tree>, SketchTreeError> {
        // A pattern larger than k was never enumerated: estimates would be
        // pure noise. (For `//` queries the *expanded* patterns are checked
        // instead, since a `//` edge can lengthen the pattern.)
        if q.edge_count() > self.config.max_pattern_edges && q.is_simple() {
            return Err(SketchTreeError::PatternTooLarge {
                edges: q.edge_count(),
                max: self.config.max_pattern_edges,
            });
        }
        if q.is_simple() {
            return Ok(q.to_tree(&self.labels).into_iter().collect());
        }
        let summary = self
            .summary
            .as_ref()
            .ok_or(SketchTreeError::SummaryRequired)?;
        let expanded = summary.expand(q, &self.labels, self.config.expand_limits)?;
        if let Some(too_big) = expanded
            .iter()
            .map(Tree::edge_count)
            .find(|&e| e > self.config.max_pattern_edges)
        {
            return Err(SketchTreeError::PatternTooLarge {
                edges: too_big,
                max: self.config.max_pattern_edges,
            });
        }
        Ok(expanded)
    }

    /// `COUNT_ord(Q)` for a concrete pattern tree (Theorem 1).
    pub fn count_ordered_tree(&self, pattern: &Tree) -> f64 {
        self.synopsis.estimate_count(self.map_pattern(pattern))
    }

    /// `COUNT_ord(Q)` for a textual pattern.  `*` and `//` queries are
    /// rewritten into a set of concrete patterns via the structural summary
    /// and answered as a total frequency (Theorem 2).  Patterns with labels
    /// never seen in the stream return exactly 0.
    pub fn count_ordered(&self, pattern: &str) -> Result<f64, SketchTreeError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let result = self.atoms_ordered(pattern).map(|atoms| {
            if let Some(m) = &self.metrics {
                m.query_atoms.add(atoms.len() as u64);
            }
            self.estimate_atoms(&atoms)
        });
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.query_ordered.inc();
            m.query_ordered_seconds.observe_duration(t0.elapsed());
            if result.is_err() {
                m.query_errors.inc();
            }
        }
        result
    }

    /// `COUNT(Q)` — unordered — for a concrete pattern tree (Section 3.3).
    pub fn count_unordered_tree(&self, pattern: &Tree) -> Result<f64, SketchTreeError> {
        let arr = arrangements(pattern, self.config.max_arrangements)?;
        let values: Vec<u64> = arr.iter().map(|t| self.map_pattern(t)).collect();
        Ok(self.synopsis.estimate_total(&values))
    }

    /// `COUNT(Q)` — unordered — for a textual pattern.
    pub fn count_unordered(&self, pattern: &str) -> Result<f64, SketchTreeError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let result = self.atoms_unordered(pattern).map(|atoms| {
            if let Some(m) = &self.metrics {
                m.query_atoms.add(atoms.len() as u64);
            }
            self.estimate_atoms(&atoms)
        });
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.query_unordered.inc();
            m.query_unordered_seconds.observe_duration(t0.elapsed());
            if result.is_err() {
                m.query_errors.inc();
            }
        }
        result
    }

    /// Total frequency of a set of distinct concrete patterns (Theorem 2).
    pub fn count_set(&self, patterns: &[Tree]) -> f64 {
        let mut values: Vec<u64> = patterns.iter().map(|t| self.map_pattern(t)).collect();
        values.sort_unstable();
        values.dedup();
        self.estimate_atoms(&values)
    }

    /// Estimates the total frequency of a sorted, deduplicated atom list —
    /// the evaluation half of [`SketchTree::count_ordered`] /
    /// [`SketchTree::count_unordered`].  Exposed so a compiled standing
    /// query can cache its atoms once and re-evaluate through *exactly*
    /// this path, guaranteeing pushed estimates are bit-identical to
    /// ad-hoc answers at the same epoch.
    pub fn estimate_atoms(&self, atoms: &[u64]) -> f64 {
        match atoms {
            [] => 0.0,
            [one] => self.synopsis.estimate_count(*one),
            many => self.synopsis.estimate_total(many),
        }
    }

    /// The distinct mapped values a textual ordered pattern denotes —
    /// the compilation half of [`SketchTree::count_ordered`].  The result
    /// is sorted and deduplicated, hence deterministic, and stays valid
    /// until [`SketchTree::structure_version`] changes.
    pub fn atoms_ordered(&self, pattern: &str) -> Result<Vec<u64>, SketchTreeError> {
        let trees = self.resolve(pattern)?;
        let mut atoms: Vec<u64> = trees.iter().map(|t| self.map_pattern(t)).collect();
        atoms.sort_unstable();
        atoms.dedup();
        Ok(atoms)
    }

    /// The distinct mapped values of all arrangements of all resolutions of
    /// a textual unordered pattern — the compilation half of
    /// [`SketchTree::count_unordered`], with the same determinism and
    /// validity contract as [`SketchTree::atoms_ordered`].
    pub fn atoms_unordered(&self, pattern: &str) -> Result<Vec<u64>, SketchTreeError> {
        let trees = self.resolve(pattern)?;
        let mut atoms = Vec::new();
        for t in &trees {
            for a in arrangements(t, self.config.max_arrangements)? {
                atoms.push(self.map_pattern(&a));
            }
        }
        atoms.sort_unstable();
        atoms.dedup();
        Ok(atoms)
    }

    /// Estimates a `+ − ×` expression over ordered/unordered pattern counts
    /// (Section 4).  Each leaf expands to a sum of distinct atoms; products
    /// distribute; the synopsis evaluates the expanded `Xᵏ/k!·Πξ` terms.
    pub fn estimate(&self, expr: &CountExpr) -> Result<f64, SketchTreeError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let result = self.estimate_inner(expr);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.query_expr.inc();
            m.query_expr_seconds.observe_duration(t0.elapsed());
            if result.is_err() {
                m.query_errors.inc();
            }
        }
        result
    }

    fn estimate_inner(&self, expr: &CountExpr) -> Result<f64, SketchTreeError> {
        let terms = self.lower(expr)?;
        if let Some(m) = &self.metrics {
            m.query_atoms
                .add(terms.iter().map(|t| t.queries.len() as u64).sum());
        }
        self.estimate_lowered(&terms)
    }

    /// Evaluates pre-lowered estimator terms — the evaluation half of
    /// [`SketchTree::estimate`], split out so compiled standing
    /// expressions re-evaluate through the identical path as ad-hoc
    /// expression queries (bit-for-bit, at any fixed epoch).
    pub fn estimate_lowered(&self, terms: &[Term]) -> Result<f64, SketchTreeError> {
        if terms.is_empty() {
            return Ok(0.0);
        }
        Ok(self.synopsis.estimate_terms(terms)?)
    }

    /// Lowers a [`CountExpr`] to estimator terms, constant-folding leaves
    /// with unseen labels to zero.  Like the atom lists, lowered terms are
    /// deterministic (sorted, like terms merged) and stay valid until
    /// [`SketchTree::structure_version`] changes.
    pub fn lower(&self, expr: &CountExpr) -> Result<Vec<Term>, SketchTreeError> {
        let mut terms = self.lower_rec(expr)?;
        // Merge like terms and drop zeros.
        terms.sort_by(|a, b| a.queries.cmp(&b.queries));
        let mut merged: Vec<Term> = Vec::new();
        for t in terms {
            match merged.last_mut() {
                Some(last) if last.queries == t.queries => last.coeff += t.coeff,
                _ => merged.push(t),
            }
        }
        merged.retain(|t| t.coeff != 0);
        Ok(merged)
    }

    fn lower_rec(&self, expr: &CountExpr) -> Result<Vec<Term>, SketchTreeError> {
        match expr {
            CountExpr::Ordered(p) => Ok(self
                .atoms_ordered(p)?
                .into_iter()
                .map(|a| Term {
                    coeff: 1,
                    queries: vec![a],
                })
                .collect()),
            CountExpr::Unordered(p) => Ok(self
                .atoms_unordered(p)?
                .into_iter()
                .map(|a| Term {
                    coeff: 1,
                    queries: vec![a],
                })
                .collect()),
            CountExpr::Add(a, b) => {
                let mut t = self.lower_rec(a)?;
                t.extend(self.lower_rec(b)?);
                Ok(t)
            }
            CountExpr::Sub(a, b) => {
                let mut t = self.lower_rec(a)?;
                t.extend(self.lower_rec(b)?.into_iter().map(|mut x| {
                    x.coeff = -x.coeff;
                    x
                }));
                Ok(t)
            }
            CountExpr::Mul(a, b) => {
                let ta = self.lower_rec(a)?;
                let tb = self.lower_rec(b)?;
                let mut out = Vec::with_capacity(ta.len() * tb.len());
                for x in &ta {
                    for y in &tb {
                        let mut queries = x.queries.clone();
                        queries.extend_from_slice(&y.queries);
                        queries.sort_unstable();
                        out.push(Term {
                            coeff: x.coeff * y.coeff,
                            queries,
                        });
                    }
                }
                Ok(out)
            }
        }
    }

    /// Exact value of an expression from the tracked baseline (requires
    /// `track_exact`); the denominators of every relative error the
    /// experiment harness reports.
    pub fn exact_value(&self, expr: &CountExpr) -> Result<f64, SketchTreeError> {
        let exact = self
            .exact
            .as_ref()
            .ok_or(SketchTreeError::ExactTrackingDisabled)?;
        let terms = self.lower(expr)?;
        Ok(terms
            .iter()
            .map(|t| {
                t.coeff as f64
                    * t.queries
                        .iter()
                        .map(|&q| exact.count(q) as f64)
                        .product::<f64>()
            })
            .sum())
    }

    /// Exact `COUNT_ord` of a textual pattern (requires `track_exact`).
    pub fn exact_count_ordered(&self, pattern: &str) -> Result<u64, SketchTreeError> {
        let exact = self
            .exact
            .as_ref()
            .ok_or(SketchTreeError::ExactTrackingDisabled)?;
        Ok(self
            .atoms_ordered(pattern)?
            .iter()
            .map(|&a| exact.count(a))
            .sum())
    }

    /// Exact unordered `COUNT` of a textual pattern (requires
    /// `track_exact`).
    pub fn exact_count_unordered(&self, pattern: &str) -> Result<u64, SketchTreeError> {
        let exact = self
            .exact
            .as_ref()
            .ok_or(SketchTreeError::ExactTrackingDisabled)?;
        Ok(self
            .atoms_unordered(pattern)?
            .iter()
            .map(|&a| exact.count(a))
            .sum())
    }

    /// Point estimate by pre-mapped value (Theorem 1).  The experiment
    /// harness queries by value because its workloads are drawn from the
    /// observed pattern population (Section 7.3).
    pub fn estimate_value(&self, value: u64) -> f64 {
        self.synopsis.estimate_count(value)
    }

    /// Total-frequency estimate for distinct pre-mapped values (Theorem 2).
    pub fn estimate_values_total(&self, values: &[u64]) -> f64 {
        match values {
            [] => 0.0,
            [one] => self.synopsis.estimate_count(*one),
            many => self.synopsis.estimate_total(many),
        }
    }

    /// Product-of-counts estimate for distinct pre-mapped values
    /// (Section 4; needs `2k+1`-wise ξ independence for `k` values).
    pub fn estimate_values_product(&self, values: &[u64]) -> Result<f64, SketchTreeError> {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let term = Term {
            coeff: 1,
            queries: sorted,
        };
        Ok(self.synopsis.estimate_terms(&[term])?)
    }

    /// Merges another synopsis built over a disjoint slice of the same
    /// logical tree stream into this one (scale-out ingest: shard the
    /// stream, merge the synopses).
    ///
    /// Requires identical configurations: only then do the two sides share
    /// the mapping polynomial, ξ families, routing and top-k shape that
    /// make counter addition meaningful.  Pattern values are already
    /// comparable across sides — the canonical label coding
    /// ([`SketchTree::map_pattern`]) keys them by label *names*, not
    /// interned ids.  Everything that does speak ids — the label table and
    /// the structural summary — is reconciled by name here: `other`'s ids
    /// are remapped id → name → this table's id before its summary is
    /// absorbed.  Merging by id instead would silently cross-wire
    /// transitions whenever the two sides interned labels in different
    /// orders, which is the norm for independently fed shards.
    ///
    /// With top-k disabled the merged synopsis is byte-identical to one
    /// that ingested both streams sequentially; with top-k enabled the
    /// delete condition (and hence every compensated estimate) is
    /// preserved instead — see [`StreamSynopsis::merge_from`].
    pub fn merge(&mut self, other: &SketchTree) -> Result<(), &'static str> {
        if self.config != other.config {
            return Err("config mismatch: only identically configured synopses merge");
        }
        // Union the label tables, remembering where each of other's ids
        // landed in this table.
        let remap: Vec<sketchtree_tree::Label> = (0..other.labels.len() as u32)
            .map(|i| {
                let id = sketchtree_tree::Label(i);
                self.labels.intern(other.labels.name(id))
            })
            .collect();
        self.sync_label_codes();
        self.synopsis.merge_from(&other.synopsis)?;
        if let (Some(summary), Some(other_summary)) = (&mut self.summary, &other.summary) {
            summary.merge_remapped(other_summary, |l| {
                remap.get(l.0 as usize).copied().unwrap_or(l)
            });
        }
        if let (Some(exact), Some(other_exact)) = (&mut self.exact, &other.exact) {
            exact.merge_from(other_exact);
        }
        self.trees_processed = self.trees_processed.saturating_add(other.trees_processed);
        self.patterns_processed =
            self.patterns_processed.saturating_add(other.patterns_processed);
        // `wal_seq` is deliberately left alone: the merged-in shard's
        // durability cursor describes *its* log, not ours.
        self.epoch += 1;
        Ok(())
    }

    /// Exports the synopsis' mutable sketch state (for
    /// [`crate::snapshot`]).
    pub fn export_synopsis_state(&self) -> sketchtree_sketch::SynopsisState {
        self.synopsis.export_state()
    }

    /// Reassembles a synopsis from snapshot parts. Internal to
    /// [`crate::snapshot`]; validates cross-part consistency.
    #[doc(hidden)]
    pub fn from_snapshot_parts(
        config: SketchTreeConfig,
        label_names: Vec<String>,
        state: sketchtree_sketch::SynopsisState,
        summary: Option<SummaryParts>,
        trees_processed: u64,
        patterns_processed: u64,
    ) -> Result<Self, &'static str> {
        if state.bank_counters.len() != config.synopsis.virtual_streams {
            return Err("bank count mismatch");
        }
        if config.maintain_summary != summary.is_some() {
            return Err("summary presence disagrees with config");
        }
        let mut labels = LabelTable::new();
        for name in &label_names {
            labels.intern(name);
        }
        if labels.len() != label_names.len() {
            return Err("duplicate label names");
        }
        let mapper = Mapper::new(config.fingerprint_degree, config.mapping_seed);
        let label_codes = (0..labels.len() as u32)
            .map(|i| mapper.label_code(labels.name(sketchtree_tree::Label(i))))
            .collect();
        let synopsis = StreamSynopsis::from_state(config.synopsis.clone(), state);
        let summary = summary.map(|(ls, ts)| {
            for &l in &ls {
                if labels.len() <= l.0 as usize {
                    // tolerated: label referenced beyond table is corrupt,
                    // but checked below via max id
                }
            }
            StructuralSummary::from_parts(ls, ts)
        });
        Ok(Self {
            config,
            labels,
            mapper,
            label_codes,
            synopsis,
            summary,
            exact: None,
            trees_processed,
            patterns_processed,
            // Restore-on-start is a state change: start at 1 so caches
            // keyed on the empty synopsis' epoch 0 can never serve a
            // pre-restore value for the restored state.
            epoch: 1,
            // The snapshot reader restores the recorded cursor via
            // [`SketchTree::set_wal_seq`] after assembly.
            wal_seq: 0,
            metrics: None,
            scratch: EnumScratch::new(),
        })
    }

    /// A scrape-time snapshot of synopsis health for monitoring: counter
    /// fill, top-k occupancy, partition balance, the residual self-join and
    /// the estimator-variance proxy.  Cost is one pass over the in-memory
    /// sketch counters — cheap relative to a metrics scrape, but not free,
    /// so call it per scrape rather than per query.
    pub fn sketch_health(&self) -> SketchHealth {
        let (counters_nonzero, counters_total) = self.synopsis.counter_occupancy();
        let (topk_tracked, topk_capacity) = self.synopsis.topk_occupancy();
        let means = self.synopsis.residual_self_join_group_means();
        SketchHealth {
            counters_nonzero,
            counters_total,
            topk_tracked,
            topk_capacity,
            partition_inserts: self.synopsis.partition_insert_counts().to_vec(),
            values_processed: self.synopsis.values_processed(),
            residual_self_join: self.synopsis.estimate_residual_self_join(),
            estimator_spread: relative_spread(&means),
            memory_bytes: self.memory_bytes() as u64,
            trees_processed: self.trees_processed,
            patterns_processed: self.patterns_processed,
            labels: self.labels.len() as u64,
        }
    }

    /// Residual self-join size of the sketched stream (diagnostic).
    pub fn residual_self_join(&self) -> f64 {
        self.synopsis.estimate_residual_self_join()
    }

    /// Heavy hitters currently tracked by the top-k strategy.
    pub fn tracked_heavy_hitters(&self) -> Vec<(u64, i64)> {
        self.synopsis.tracked_heavy_hitters()
    }

    /// Synopsis memory (sketch counters + seeds + top-k slots + summary);
    /// excludes the optional exact baseline, which is measurement
    /// scaffolding, not part of the synopsis.
    pub fn memory_bytes(&self) -> usize {
        self.synopsis.memory_bytes()
            + self.summary.as_ref().map_or(0, StructuralSummary::memory_bytes)
    }
}

/// Canonical symbol sequence of an encoded pattern: each LPS label id is
/// replaced by the seed-derived code of the label's *name* (cache first,
/// computed on the fly for labels interned after the last cache sync); NPS
/// postorder numbers pass through unchanged.  Free function so the ingest
/// hot loop can use it under split borrows.
fn canonical_symbols(
    mapper: &Mapper,
    labels: &LabelTable,
    codes: &[u64],
    seq: &PruferSeq,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(seq.lps.len() + seq.nps.len());
    for &l in &seq.lps {
        let code = codes
            .get(l.0 as usize)
            .copied()
            .unwrap_or_else(|| mapper.label_code(labels.name(l)));
        out.push(code);
    }
    out.extend(seq.nps.iter().map(|&n| u64::from(n)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic stream: many copies of a few shapes.
    fn build() -> SketchTree {
        let config = SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: SynopsisConfig {
                s1: 60,
                s2: 7,
                virtual_streams: 13,
                topk: 8,
                independence: 5,
                topk_probability: u16::MAX,
                seed: 7,
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        };
        let mut st = SketchTree::new(config);
        let (a, b, c, d) = {
            let l = st.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"), l.intern("D"))
        };
        // 30 × A(B,C); 10 × A(C,B); 5 × A(B(D),C).
        let t1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let t2 = Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)]);
        let t3 = Tree::node(
            a,
            vec![Tree::node(b, vec![Tree::leaf(d)]), Tree::leaf(c)],
        );
        for _ in 0..30 {
            st.ingest(&t1);
        }
        for _ in 0..10 {
            st.ingest(&t2);
        }
        for _ in 0..5 {
            st.ingest(&t3);
        }
        st
    }

    /// Merging two shards that interned the same label names in *different*
    /// orders must equal sequential ingest of both streams: canonical label
    /// coding keys every mapped value by name, and the summary remap keys
    /// transitions by name.  Top-k is off so equality is structural.
    #[test]
    fn merge_is_exact_across_different_interning_orders() {
        let config = SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: SynopsisConfig {
                s1: 20,
                s2: 5,
                virtual_streams: 7,
                topk: 0,
                independence: 5,
                topk_probability: u16::MAX,
                seed: 7,
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        };
        // Shard 1 interns A then B; shard 2 interns B then A.
        let mut shard1 = SketchTree::new(config.clone());
        let (a1, b1) = {
            let l = shard1.labels_mut();
            (l.intern("A"), l.intern("B"))
        };
        let mut shard2 = SketchTree::new(config.clone());
        let (b2, a2) = {
            let l = shard2.labels_mut();
            (l.intern("B"), l.intern("A"))
        };
        let mut whole = SketchTree::new(config.clone());
        let (aw, bw) = {
            let l = whole.labels_mut();
            (l.intern("A"), l.intern("B"))
        };
        let mk = |a: sketchtree_tree::Label, b: sketchtree_tree::Label| {
            vec![
                Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b)]),
                Tree::node(b, vec![Tree::node(a, vec![Tree::leaf(b)])]),
            ]
        };
        for t in mk(a1, b1) {
            for _ in 0..12 {
                shard1.ingest(&t);
            }
        }
        for t in mk(a2, b2).into_iter().rev() {
            for _ in 0..8 {
                shard2.ingest(&t);
            }
        }
        for t in mk(aw, bw) {
            for _ in 0..12 {
                whole.ingest(&t);
            }
        }
        for t in mk(aw, bw).into_iter().rev() {
            for _ in 0..8 {
                whole.ingest(&t);
            }
        }
        shard1.merge(&shard2).expect("configs match");
        assert_eq!(shard1.export_synopsis_state(), whole.export_synopsis_state());
        assert_eq!(shard1.trees_processed(), whole.trees_processed());
        assert_eq!(shard1.patterns_processed(), whole.patterns_processed());
        // Exact baselines agree value-by-value (canonical values coincide).
        let mut merged_exact: Vec<(u64, u64)> = shard1.exact().unwrap().iter().collect();
        let mut whole_exact: Vec<(u64, u64)> = whole.exact().unwrap().iter().collect();
        merged_exact.sort_unstable();
        whole_exact.sort_unstable();
        assert_eq!(merged_exact, whole_exact);
        // Summaries agree after the name-keyed remap: the same queries
        // resolve identically, bit for bit.
        for q in ["A(B,B)", "B(A(B))", "A(B)", "B(A)"] {
            assert_eq!(
                shard1.count_ordered(q).unwrap().to_bits(),
                whole.count_ordered(q).unwrap().to_bits(),
                "{q}"
            );
        }
    }

    /// The allocation-free fast path (arena enumeration + direct symbol
    /// emission + batch fingerprinting) must reproduce the legacy
    /// project → Prüfer-encode → map pipeline value for value, in order,
    /// over randomized tree shapes — and hence bit-identical synopsis
    /// state after ingesting the same stream.
    #[test]
    fn fast_ingest_path_matches_legacy_observer_path() {
        use sketchtree_hash::SplitMix64;
        for include_single in [false, true] {
            let config = SketchTreeConfig {
                max_pattern_edges: 4,
                include_single_nodes: include_single,
                synopsis: SynopsisConfig {
                    s1: 20,
                    s2: 5,
                    virtual_streams: 7,
                    topk: 4,
                    independence: 5,
                    topk_probability: u16::MAX,
                    seed: 7,
                },
                track_exact: true,
                ..SketchTreeConfig::default()
            };
            let mut fast = SketchTree::new(config.clone());
            let mut legacy = SketchTree::new(config);
            let names = ["a", "b", "c", "d", "e"];
            let fast_labels: Vec<Label> =
                names.iter().map(|n| fast.labels_mut().intern(n)).collect();
            for n in names {
                legacy.labels_mut().intern(n);
            }
            let mut rng = SplitMix64::new(0xBEEF + u64::from(include_single));
            for round in 0..40 {
                // Random tree: grow 1..=12 extra nodes under random parents.
                let mut t = Tree::leaf(fast_labels[(rng.next_u64() % 5) as usize]);
                let extra = rng.next_u64() % 12;
                for _ in 0..extra {
                    let parent = NodeId((rng.next_u64() % t.len() as u64) as u32);
                    let label = fast_labels[(rng.next_u64() % 5) as usize];
                    t.graft_leaf(parent, label);
                }
                let mut legacy_values = Vec::new();
                legacy.ingest_with(&t, |v, _| legacy_values.push(v));
                let got = fast.enumerate_values(&t);
                assert_eq!(got, legacy_values, "round {round}, tree {t}");
                fast.ingest(&t);
            }
            assert_eq!(fast.export_synopsis_state(), legacy.export_synopsis_state());
            assert_eq!(fast.patterns_processed(), legacy.patterns_processed());
            assert_eq!(fast.trees_processed(), legacy.trees_processed());
        }
    }

    #[test]
    fn merge_rejects_config_mismatch() {
        let mut a = build();
        let b = SketchTree::new(SketchTreeConfig {
            mapping_seed: 1,
            ..build().config().clone()
        });
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_with_topk_preserves_compensated_estimates() {
        // Both shards run top-k; the merged synopsis must still estimate
        // every pattern near its union-stream frequency.
        let mut shard1 = build();
        let shard2 = build();
        shard1.merge(&shard2).expect("configs match");
        assert_eq!(shard1.trees_processed(), 90);
        for (q, truth) in [("A(B,C)", 70.0), ("A(C,B)", 20.0), ("B(D)", 10.0)] {
            let est = shard1.count_ordered(q).unwrap();
            assert!(
                (est - truth).abs() <= truth.mul_add(0.35, 8.0),
                "{q}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn counters_track_stream() {
        let st = build();
        assert_eq!(st.trees_processed(), 45);
        assert!(st.patterns_processed() > 45);
        assert_eq!(
            st.patterns_processed(),
            st.exact().unwrap().total()
        );
    }

    #[test]
    fn ordered_counts_match_exact_within_tolerance() {
        let st = build();
        for q in ["A(B,C)", "A(C,B)", "A(B)", "B(D)", "A(B(D),C)"] {
            let exact = st.exact_count_ordered(q).unwrap() as f64;
            let est = st.count_ordered(q).unwrap();
            assert!(
                (est - exact).abs() <= (exact * 0.35).max(8.0),
                "{q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exact_ordered_counts_are_correct() {
        let st = build();
        // A(B,C) appears in t1 (30×) and in t3 (5×: B and C children of A,
        // order B then C — pattern A(B,C) via edges (A,B),(A,C)).
        assert_eq!(st.exact_count_ordered("A(B,C)").unwrap(), 35);
        assert_eq!(st.exact_count_ordered("A(C,B)").unwrap(), 10);
        assert_eq!(st.exact_count_ordered("B(D)").unwrap(), 5);
        assert_eq!(st.exact_count_ordered("A(B(D))").unwrap(), 5);
        assert_eq!(st.exact_count_ordered("ZZZ").unwrap(), 0);
    }

    #[test]
    fn unordered_is_sum_of_arrangements() {
        let st = build();
        assert_eq!(st.exact_count_unordered("A(B,C)").unwrap(), 45);
        let est = st.count_unordered("A(B,C)").unwrap();
        assert!((est - 45.0).abs() <= 14.0, "est {est}");
    }

    #[test]
    fn unknown_label_is_exactly_zero() {
        let st = build();
        assert_eq!(st.count_ordered("NOPE(NADA)").unwrap(), 0.0);
        assert_eq!(st.count_unordered("NOPE").unwrap(), 0.0);
    }

    #[test]
    fn wildcard_queries_via_summary() {
        let st = build();
        // A(*) → A(B) + A(C): exact 45 + 45 = 90... A(B) appears in all 45
        // trees once (t1: edge (A,B); t2: (A,B); t3: (A,B)); same for A(C).
        let exact_ab = st.exact_count_ordered("A(B)").unwrap();
        let exact_ac = st.exact_count_ordered("A(C)").unwrap();
        let est = st.count_ordered("A(*)").unwrap();
        let truth = (exact_ab + exact_ac) as f64;
        assert!(
            (est - truth).abs() <= (truth * 0.3).max(10.0),
            "est {est} vs {truth}"
        );
    }

    #[test]
    fn descendant_queries_via_summary() {
        let st = build();
        // A(//D): only path A→B→D exists (in t3), exact 5.
        let est = st.count_ordered("A(//D)").unwrap();
        assert!((est - 5.0).abs() <= 8.0, "est {est}");
    }

    #[test]
    fn summary_disabled_errors() {
        let mut st = SketchTree::new(SketchTreeConfig {
            maintain_summary: false,
            ..SketchTreeConfig::default()
        });
        let a = st.labels_mut().intern("A");
        st.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        assert_eq!(
            st.count_ordered("A(*)"),
            Err(SketchTreeError::SummaryRequired)
        );
    }

    #[test]
    fn expression_estimation() {
        let st = build();
        // COUNT_ord(A(B,C)) − COUNT_ord(A(C,B)) = 35 − 10 = 25.
        let e = CountExpr::ordered("A(B,C)").sub(CountExpr::ordered("A(C,B)"));
        let exact = st.exact_value(&e).unwrap();
        assert_eq!(exact, 25.0);
        let est = st.estimate(&e).unwrap();
        assert!((est - 25.0).abs() <= 15.0, "est {est}");
    }

    #[test]
    fn product_expression() {
        let st = build();
        let e = CountExpr::ordered("A(B,C)").mul(CountExpr::ordered("B(D)"));
        let exact = st.exact_value(&e).unwrap();
        assert_eq!(exact, 35.0 * 5.0);
        let est = st.estimate(&e).unwrap();
        assert!(
            (est - exact).abs() <= exact * 0.8 + 50.0,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn expression_with_unseen_pattern_folds_to_zero() {
        let st = build();
        let e = CountExpr::ordered("A(B,C)").mul(CountExpr::ordered("GHOST"));
        assert_eq!(st.estimate(&e).unwrap(), 0.0);
        assert_eq!(st.exact_value(&e).unwrap(), 0.0);
    }

    #[test]
    fn duplicate_pattern_in_product_rejected() {
        let st = build();
        let e = CountExpr::ordered("A(B,C)").mul(CountExpr::ordered("A(B,C)"));
        assert!(matches!(
            st.estimate(&e),
            Err(SketchTreeError::Synopsis(SynopsisError::Expr(_)))
        ));
    }

    #[test]
    fn parse_errors_propagate() {
        let st = build();
        assert!(matches!(
            st.count_ordered("A(("),
            Err(SketchTreeError::Query(_))
        ));
    }

    #[test]
    fn exact_disabled_errors() {
        let mut st = SketchTree::new(SketchTreeConfig::default());
        let a = st.labels_mut().intern("A");
        st.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        assert_eq!(
            st.exact_count_ordered("A"),
            Err(SketchTreeError::ExactTrackingDisabled)
        );
    }

    #[test]
    fn count_set_totals_distinct_patterns() {
        let st = build();
        let labels = st.labels();
        let (a, b, c) = (
            labels.lookup("A").unwrap(),
            labels.lookup("B").unwrap(),
            labels.lookup("C").unwrap(),
        );
        let p1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let p2 = Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)]);
        // Duplicates in the input are deduplicated before Theorem 2.
        let est = st.count_set(&[p1.clone(), p2.clone(), p1.clone()]);
        assert!((est - 45.0).abs() < 15.0, "est {est}");
        assert_eq!(st.count_set(&[]), 0.0);
    }

    #[test]
    fn estimate_values_apis() {
        let st = build();
        let labels = st.labels();
        let (a, b, c) = (
            labels.lookup("A").unwrap(),
            labels.lookup("B").unwrap(),
            labels.lookup("C").unwrap(),
        );
        let v1 = st.map_pattern(&Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]));
        let v2 = st.map_pattern(&Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)]));
        let p = st.estimate_value(v1);
        assert!((p - 35.0).abs() < 12.0, "point {p}");
        let t = st.estimate_values_total(&[v1, v2]);
        assert!((t - 45.0).abs() < 15.0, "total {t}");
        assert_eq!(st.estimate_values_total(&[]), 0.0);
        let prod = st.estimate_values_product(&[v1, v2]).unwrap();
        assert!((prod - 350.0).abs() < 350.0, "product {prod}");
        // Duplicate values in a product are rejected.
        assert!(st.estimate_values_product(&[v1, v1]).is_err());
    }

    #[test]
    fn count_expr_display_roundtrips_through_parser() {
        let e = CountExpr::ordered("A(B,C)")
            .mul(CountExpr::unordered("D"))
            .sub(CountExpr::ordered("E(F)").add(CountExpr::ordered("G")));
        let text = e.to_string();
        let parsed = crate::exprparse::parse_expr(&text).expect("display is parseable");
        assert_eq!(parsed, e, "text was {text}");
    }

    #[test]
    fn unordered_wildcard_combination() {
        // COUNT of a wildcard pattern: expand via the summary, then take
        // all arrangements of each expansion.
        let st = build();
        // A(*,C) unordered: '*' resolves to B (A's other child label);
        // arrangements of A(B,C) cover both orders: exact 45.
        let exact = st.exact_count_unordered("A(*,C)").unwrap();
        assert_eq!(exact, 45);
        let est = st.count_unordered("A(*,C)").unwrap();
        assert!((est - 45.0).abs() < 15.0, "est {est}");
    }

    #[test]
    fn oversized_patterns_rejected() {
        let st = build(); // k = 3
        // 4-edge simple pattern: never enumerated, so refuse to estimate.
        match st.count_ordered("A(B(D(A(B))))") {
            Err(SketchTreeError::PatternTooLarge { edges: 4, max: 3 }) => {}
            other => panic!("expected PatternTooLarge, got {other:?}"),
        }
        // Same guard through expressions and unordered counts.
        assert!(matches!(
            st.count_unordered("A(B(D(A(B))))"),
            Err(SketchTreeError::PatternTooLarge { .. })
        ));
        let e = CountExpr::ordered("A(B(D(A(B))))");
        assert!(matches!(
            st.estimate(&e),
            Err(SketchTreeError::PatternTooLarge { .. })
        ));
        // Exactly k edges is fine.
        assert!(st.count_ordered("A(B(D),C)").is_ok());
    }

    #[test]
    fn memory_reporting_nonzero() {
        let st = build();
        assert!(st.memory_bytes() > 0);
    }

    #[test]
    fn attached_metrics_observe_pipeline() {
        use crate::metrics::CoreMetrics;
        use sketchtree_metrics::Registry;
        let reg = Registry::new();
        let m = CoreMetrics::register(&reg);
        let mut st = build();
        st.attach_metrics(m.clone());
        let a = st.labels().lookup("A").expect("A interned");
        let b = st.labels().lookup("B").expect("B interned");
        let t = Tree::node(a, vec![Tree::leaf(b)]);
        st.ingest(&t);
        let values = st.enumerate_values(&t);
        st.ingest_precomputed(&t, &values);
        st.count_ordered("A(B)").unwrap();
        st.count_unordered("A(B)").unwrap();
        st.estimate(&CountExpr::ordered("A(B)")).unwrap();
        assert!(st.count_ordered("A((").is_err());
        assert_eq!(m.ingest_trees.get(), 2);
        assert!(m.ingest_patterns.get() >= 2);
        assert_eq!(m.ingest_seconds.count(), 1);
        assert_eq!(m.enumerate_seconds.count(), 1);
        assert_eq!(m.insert_seconds.count(), 1);
        assert_eq!(m.query_ordered.get(), 2); // one ok + one parse error
        assert_eq!(m.query_unordered.get(), 1);
        assert_eq!(m.query_expr.get(), 1);
        assert_eq!(m.query_errors.get(), 1);
        assert!(m.query_atoms.get() >= 3);
        assert_eq!(m.query_ordered_seconds.count(), 2);
    }

    #[test]
    fn sketch_health_reflects_stream() {
        let st = build();
        let h = st.sketch_health();
        assert_eq!(h.trees_processed, 45);
        assert_eq!(h.patterns_processed, st.patterns_processed());
        assert_eq!(h.counters_total, 13 * 60 * 7);
        assert_eq!(h.topk_capacity, 13 * 8);
        assert!(h.topk_tracked > 0);
        assert_eq!(
            h.partition_inserts.iter().sum::<u64>(),
            h.values_processed
        );
        assert!(h.residual_self_join >= 0.0);
        assert!(h.estimator_spread >= 0.0);
        assert!(h.memory_bytes > 0);
        assert_eq!(h.labels, 4);
        // Fresh synopsis: everything zero.
        let empty = SketchTree::new(SketchTreeConfig::default());
        let h0 = empty.sketch_health();
        assert_eq!(h0.counters_nonzero, 0);
        assert_eq!(h0.values_processed, 0);
        assert_eq!(h0.estimator_spread, 0.0);
    }

    #[test]
    fn debug_format_is_informative() {
        let st = build();
        let s = format!("{st:?}");
        assert!(s.contains("trees_processed"));
    }
}
