//! Textual query patterns.
//!
//! SketchTree queries are labeled trees (Section 2.1); this module gives
//! them a compact text form so examples, tests and the experiment harness
//! don't hand-assemble trees:
//!
//! ```text
//! pattern  := node
//! node     := prefix? label children?
//! prefix   := "//"            (descendant edge to parent; children only)
//! label    := bare | quoted | "*"
//! children := "(" node ("," node)* ")"
//! ```
//!
//! `A(B, C(D))` is the root `A` with child `B` and child `C` having child
//! `D`.  Values with special characters are quoted: `author("Don Knuth")`.
//! `*` is a wildcard label and `//X` a descendant edge — both only
//! answerable through the structural summary of Section 6.2
//! ([`crate::summary`]).

use sketchtree_tree::{LabelTable, Tree};
use std::fmt;

/// A query node label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryLabel {
    /// A concrete element name or value.
    Name(String),
    /// `*` — any label (Section 6.2).
    Wildcard,
}

/// The edge connecting a node to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Parent-child (`/` in XPath terms) — the default.
    Child,
    /// Ancestor-descendant (`//`).
    Descendant,
}

/// A node of a parsed query pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryNode {
    /// The node's label.
    pub label: QueryLabel,
    /// Edge to the parent ([`EdgeKind::Child`] for the root).
    pub edge: EdgeKind,
    /// Ordered children.
    pub children: Vec<QueryNode>,
}

/// A parsed query pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    /// The root node.
    pub root: QueryNode,
}

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Unexpected character.
    UnexpectedChar {
        /// Byte offset.
        at: usize,
    },
    /// Input ended mid-pattern.
    UnexpectedEnd,
    /// Input continues after a complete pattern.
    TrailingInput {
        /// Byte offset where the trailing input starts.
        at: usize,
    },
    /// A label was empty.
    EmptyLabel {
        /// Byte offset.
        at: usize,
    },
    /// `//` on the root node (patterns already match anywhere; a root
    /// descendant edge is meaningless).
    RootDescendant,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnexpectedChar { at } => write!(f, "unexpected character at byte {at}"),
            QueryError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            QueryError::TrailingInput { at } => write!(f, "trailing input at byte {at}"),
            QueryError::EmptyLabel { at } => write!(f, "empty label at byte {at}"),
            QueryError::RootDescendant => write!(f, "`//` is not allowed on the root"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Parses a pattern from its text form.
pub fn parse_pattern(input: &str) -> Result<QueryPattern, QueryError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_ws();
    let root = p.parse_node()?;
    if root.edge == EdgeKind::Descendant {
        return Err(QueryError::RootDescendant);
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(QueryError::TrailingInput { at: p.pos });
    }
    Ok(QueryPattern { root })
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_node(&mut self) -> Result<QueryNode, QueryError> {
        self.skip_ws();
        let mut edge = EdgeKind::Child;
        if self.input[self.pos..].starts_with("//") {
            edge = EdgeKind::Descendant;
            self.pos += 2;
            self.skip_ws();
        }
        let label = self.parse_label()?;
        self.skip_ws();
        let mut children = Vec::new();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            loop {
                children.push(self.parse_node()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    Some(_) => return Err(QueryError::UnexpectedChar { at: self.pos }),
                    None => return Err(QueryError::UnexpectedEnd),
                }
            }
        }
        Ok(QueryNode {
            label,
            edge,
            children,
        })
    }

    fn parse_label(&mut self) -> Result<QueryLabel, QueryError> {
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Ok(QueryLabel::Wildcard)
            }
            Some(b'"') => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.peek() {
                        None => return Err(QueryError::UnexpectedEnd),
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek() {
                                None => return Err(QueryError::UnexpectedEnd),
                                Some(c) => {
                                    out.push(c as char);
                                    self.pos += 1;
                                }
                            }
                        }
                        Some(_) => {
                            // Advance over a full UTF-8 char.
                            let s = &self.input[self.pos..];
                            let ch = s.chars().next().expect("non-empty");
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                    }
                }
                Ok(QueryLabel::Name(out))
            }
            Some(_) => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if matches!(b, b'(' | b')' | b',' | b'/' | b'"' | b'*')
                        || (b as char).is_whitespace()
                    {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(QueryError::EmptyLabel { at: start });
                }
                Ok(QueryLabel::Name(self.input[start..self.pos].to_owned()))
            }
            None => Err(QueryError::UnexpectedEnd),
        }
    }
}

impl QueryNode {
    /// True if this subtree uses only concrete labels and child edges.
    pub fn is_simple(&self) -> bool {
        self.label != QueryLabel::Wildcard
            && self.edge == EdgeKind::Child
            && self.children.iter().all(QueryNode::is_simple)
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(QueryNode::node_count).sum::<usize>()
    }
}

impl QueryPattern {
    /// True if the pattern is answerable without a structural summary
    /// (no `*`, no `//`).
    pub fn is_simple(&self) -> bool {
        self.root.is_simple()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.node_count() - 1
    }

    /// Resolves a *simple* pattern against a label table.  Returns
    /// `Ok(None)` when some label has never been seen in the stream — the
    /// pattern's exact count is provably zero.
    ///
    /// # Panics
    /// Panics if the pattern is not simple (callers must route wildcard and
    /// descendant patterns through [`crate::summary::StructuralSummary`]).
    pub fn to_tree(&self, labels: &LabelTable) -> Option<Tree> {
        assert!(
            self.is_simple(),
            "to_tree requires a simple pattern; expand `*`/`//` via the structural summary"
        );
        fn build(node: &QueryNode, labels: &LabelTable) -> Option<Tree> {
            let name = match &node.label {
                QueryLabel::Name(n) => n,
                QueryLabel::Wildcard => unreachable!("checked simple"),
            };
            let label = labels.lookup(name)?;
            let children = node
                .children
                .iter()
                .map(|c| build(c, labels))
                .collect::<Option<Vec<Tree>>>()?;
            Some(if children.is_empty() {
                Tree::leaf(label)
            } else {
                Tree::node(label, children)
            })
        }
        build(&self.root, labels)
    }
}

impl fmt::Display for QueryPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(n: &QueryNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if n.edge == EdgeKind::Descendant {
                write!(f, "//")?;
            }
            match &n.label {
                QueryLabel::Wildcard => write!(f, "*")?,
                QueryLabel::Name(s)
                    if s.contains(|c: char| {
                        c.is_whitespace() || matches!(c, '(' | ')' | ',' | '/' | '"' | '*')
                    }) || s.is_empty() =>
                {
                    write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))?
                }
                QueryLabel::Name(s) => write!(f, "{s}")?,
            }
            if !n.children.is_empty() {
                write!(f, "(")?;
                for (i, c) in n.children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    rec(c, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(&self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_patterns() {
        let p = parse_pattern("A(B,C(D))").unwrap();
        assert!(p.is_simple());
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.to_string(), "A(B,C(D))");
    }

    #[test]
    fn whitespace_tolerated() {
        let a = parse_pattern("A( B , C ( D ) )").unwrap();
        let b = parse_pattern("A(B,C(D))").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_labels() {
        let p = parse_pattern(r#"author("Don Knuth (ed.)")"#).unwrap();
        match &p.root.children[0].label {
            QueryLabel::Name(n) => assert_eq!(n, "Don Knuth (ed.)"),
            other => panic!("{other:?}"),
        }
        // Display round-trips through quoting.
        let again = parse_pattern(&p.to_string()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn escaped_quotes() {
        let p = parse_pattern(r#"t("say \"hi\"")"#).unwrap();
        match &p.root.children[0].label {
            QueryLabel::Name(n) => assert_eq!(n, "say \"hi\""),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_and_descendant() {
        let p = parse_pattern("A(*,//C)").unwrap();
        assert!(!p.is_simple());
        assert_eq!(p.root.children[0].label, QueryLabel::Wildcard);
        assert_eq!(p.root.children[1].edge, EdgeKind::Descendant);
        assert_eq!(p.to_string(), "A(*,//C)");
    }

    #[test]
    fn root_descendant_rejected() {
        assert_eq!(parse_pattern("//A"), Err(QueryError::RootDescendant));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_pattern(""), Err(QueryError::UnexpectedEnd));
        assert_eq!(parse_pattern("A(B"), Err(QueryError::UnexpectedEnd));
        assert!(matches!(
            parse_pattern("A(B))"),
            Err(QueryError::TrailingInput { .. })
        ));
        assert!(matches!(parse_pattern("A()"), Err(QueryError::EmptyLabel { .. })));
        assert!(matches!(
            parse_pattern("A(B C)"),
            Err(QueryError::UnexpectedChar { .. })
        ));
        assert_eq!(parse_pattern("\"unterminated"), Err(QueryError::UnexpectedEnd));
    }

    #[test]
    fn to_tree_resolves_known_labels() {
        let mut labels = sketchtree_tree::LabelTable::new();
        let a = labels.intern("A");
        let b = labels.intern("B");
        let p = parse_pattern("A(B)").unwrap();
        let t = p.to_tree(&labels).unwrap();
        assert_eq!(t.label(t.root()), a);
        assert_eq!(t.label(t.children(t.root())[0]), b);
    }

    #[test]
    fn to_tree_unknown_label_is_none() {
        let mut labels = sketchtree_tree::LabelTable::new();
        labels.intern("A");
        let p = parse_pattern("A(Z)").unwrap();
        assert!(p.to_tree(&labels).is_none());
    }

    #[test]
    #[should_panic]
    fn to_tree_panics_on_wildcards() {
        let labels = sketchtree_tree::LabelTable::new();
        parse_pattern("A(*)").unwrap().to_tree(&labels);
    }

    #[test]
    fn unicode_labels() {
        let p = parse_pattern("日本(語)").unwrap();
        assert_eq!(p.to_string(), "日本(語)");
    }

    #[test]
    fn single_node_pattern() {
        let p = parse_pattern("A").unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.edge_count(), 0);
    }
}
