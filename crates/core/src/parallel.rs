//! The parallel ingest worker pool — std-only threading for Algorithm 1.
//!
//! Ingesting a batch has two embarrassingly parallel halves with different
//! shapes:
//!
//! * **enumeration** (EnumTree + Prüfer encoding + Rabin fingerprinting) is
//!   read-only per tree — `map_indexed` fans trees out to workers with
//!   dynamic chunk claiming (an `AtomicUsize` cursor), so a pathological
//!   tree does not stall the batch behind a static split;
//! * **sketch insertion** commutes only *within* a virtual-stream
//!   partition — `run_partitioned` hands each worker a disjoint set of
//!   [`sketchtree_sketch::virtual_streams::SynopsisShard`] views (plus
//!   their value queues), so no counter is ever touched by two threads
//!   and no atomics or locks guard the hot loop.
//!
//! Both helpers run on [`std::thread::scope`]: borrowed inputs need no
//! `Arc`, worker panics propagate to the caller, and a `threads = 1` call
//! degenerates to the exact sequential loop — which is why every thread
//! count produces bit-identical synopses (see `concurrent.rs` parity
//! tests).
//!
//! [`IngestOptions`] carries the pool geometry.  The default thread count
//! honours the `SKETCHTREE_INGEST_THREADS` environment variable (CI forces
//! it to 1 and 8 to exercise both extremes) and otherwise uses
//! [`std::thread::available_parallelism`].

use sketchtree_metrics::Gauge;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default ingest thread count.
pub const INGEST_THREADS_ENV: &str = "SKETCHTREE_INGEST_THREADS";

/// Geometry of the parallel ingest pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Worker threads for enumeration fan-out and shard application.
    /// `1` runs the exact sequential loops on the calling thread.
    pub threads: usize,
    /// Trees enumerated per lock window in
    /// [`crate::SharedSketchTree::ingest_batch`] — bounds how long the
    /// shared lock is held, so checkpoint writers interleave with large
    /// batches.
    pub chunk_size: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            threads: default_ingest_threads(),
            chunk_size: 64,
        }
    }
}

impl IngestOptions {
    /// Options pinned to a specific thread count (chunking unchanged).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }
}

/// The default ingest thread count: `SKETCHTREE_INGEST_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn default_ingest_threads() -> usize {
    if let Ok(v) = std::env::var(INGEST_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every item, fanning out across `threads` workers with
/// dynamic claiming, and returns the results in input order.
///
/// `queue_depth`, when given, is set to the number of still-unclaimed
/// items as workers make progress (and to zero on return) — the ingest
/// backlog gauge.
///
/// The production pipeline now threads per-worker scratch state through
/// [`map_indexed_with`]; this stateless form remains as the test surface
/// for the shared claiming/ordering/gauge machinery.
#[cfg(test)]
pub(crate) fn map_indexed<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
    queue_depth: Option<&Gauge>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed_with(threads, items, || (), |(), t| f(t), queue_depth)
}

/// [`map_indexed`] with per-worker mutable state: `init` runs once on each
/// worker thread (and once on the calling thread when `threads == 1`), and
/// `f` receives that worker's state alongside each claimed item.
///
/// This is how the enumeration fan-out reuses its per-worker
/// [`crate::EnumScratch`] across every tree the worker claims — the arena
/// warms up once per worker per batch instead of reallocating per tree.
pub(crate) fn map_indexed_with<T, R, S, I, F>(
    threads: usize,
    items: &[T],
    init: I,
    f: F,
    queue_depth: Option<&Gauge>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if let Some(g) = queue_depth {
                    g.set((items.len() - i - 1) as f64);
                }
                f(&mut state, t)
            })
            .collect();
        if let Some(g) = queue_depth {
            g.set(0.0);
        }
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        let init = &init;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if let Some(g) = queue_depth {
                            g.set((items.len() - i - 1) as f64);
                        }
                        local.push((i, f(&mut state, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    for (i, r) in per_worker.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(r);
        }
    }
    if let Some(g) = queue_depth {
        g.set(0.0);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), items.len(), "worker pool lost results");
    out
}

/// Runs `f` once per work item, distributing items round-robin across
/// `threads` workers.  Each item is owned by exactly one worker — the
/// partition-ownership discipline the sharded sketch insert relies on.
pub(crate) fn run_partitioned<W, F>(threads: usize, work: Vec<W>, f: F)
where
    W: Send,
    F: Fn(W) + Sync,
{
    let threads = threads.max(1).min(work.len().max(1));
    if threads == 1 {
        for w in work {
            f(w);
        }
        return;
    }
    let mut groups: Vec<Vec<W>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, w) in work.into_iter().enumerate() {
        if let Some(g) = groups.get_mut(i % threads) {
            g.push(w);
        }
    }
    // Scoped threads: panics in any worker propagate when the scope ends.
    std::thread::scope(|scope| {
        let f = &f;
        for group in groups {
            scope.spawn(move || {
                for w in group {
                    f(w);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_indexed_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = map_indexed(threads, &items, |&x| x * x, None);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads {threads}");
        }
    }

    #[test]
    fn map_indexed_with_threads_state_per_worker() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 2, 4] {
            // Each worker counts how many items it processed in its own
            // state; results must still come back in input order.
            let out = map_indexed_with(
                threads,
                &items,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    (x, *seen)
                },
                None,
            );
            let xs: Vec<u64> = out.iter().map(|&(x, _)| x).collect();
            assert_eq!(xs, items, "threads {threads}");
            // Per-worker counters sum to the item count: the last
            // observation of each worker is its total, and counts are
            // contiguous 1..=n per worker.
            let total: u64 = out.iter().map(|&(_, c)| c).filter(|&c| c > 0).count() as u64;
            assert_eq!(total, items.len() as u64);
            if threads == 1 {
                let counts: Vec<u64> = out.iter().map(|&(_, c)| c).collect();
                let expect: Vec<u64> = (1..=items.len() as u64).collect();
                assert_eq!(counts, expect, "single thread sees every item in order");
            }
        }
    }

    #[test]
    fn map_indexed_handles_empty_input() {
        let out: Vec<u64> = map_indexed(4, &[], |x: &u64| *x, None);
        assert!(out.is_empty());
    }

    #[test]
    fn map_indexed_updates_queue_depth_gauge() {
        let reg = sketchtree_metrics::Registry::new();
        let gauge = reg.gauge("test_depth", "test");
        let items: Vec<u64> = (0..10).collect();
        let _ = map_indexed(2, &items, |&x| x, Some(&gauge));
        assert_eq!(gauge.get(), 0.0, "gauge must read 0 after the batch");
    }

    #[test]
    fn run_partitioned_visits_every_item_once() {
        for threads in [1, 2, 5, 64] {
            let hits = AtomicU64::new(0);
            let work: Vec<u64> = (0..31).map(|i| 1u64 << (i % 31)).collect();
            let total: u64 = work.iter().sum();
            run_partitioned(threads, work, |w| {
                hits.fetch_add(w, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), total, "threads {threads}");
        }
    }

    #[test]
    fn default_threads_respects_env() {
        std::env::set_var(INGEST_THREADS_ENV, "3");
        assert_eq!(default_ingest_threads(), 3);
        std::env::set_var(INGEST_THREADS_ENV, "not-a-number");
        assert!(default_ingest_threads() >= 1);
        std::env::set_var(INGEST_THREADS_ENV, "0");
        assert!(default_ingest_threads() >= 1);
        std::env::remove_var(INGEST_THREADS_ENV);
        assert!(default_ingest_threads() >= 1);
        assert_eq!(IngestOptions::with_threads(0).threads, 1);
    }
}
