//! Pattern → one-dimensional value.
//!
//! Paper Example 2: a pattern's LPS and NPS are concatenated into one long
//! tuple and mapped to a single number.  Two mappings are implemented:
//!
//! * [`Mapper::map_tree`] / [`Mapper::map_seq`] — **Rabin fingerprints**
//!   (Section 6.1, the paper's experimental configuration, degree 31 by
//!   default): the symbol sequence is fingerprinted modulo a random
//!   irreducible GF(2) polynomial.  Collisions are possible but the
//!   probability is `≈ pairs · len / 2^degree`; at degree 31 with the
//!   paper's ~10⁷ distinct patterns a per-pair collision is ~10⁻⁹ scaled by
//!   sequence bit-length — and because the exact baseline in this repo keys
//!   on the *same* fingerprints, collisions perturb measured "truth" and
//!   estimates identically.  Degree 61 is available when a deployment needs
//!   collisions to be negligible outright.
//! * [`Mapper::map_exact`] — the **pairing function** of Section 2.2,
//!   evaluated exactly over arbitrary-precision naturals with the padding
//!   convention of Section 2.3.  Injective, but the values grow doubly
//!   exponentially; used as the reference in tests and available for
//!   applications with tiny patterns.

use sketchtree_hash::{pairing, BigNat, RabinFingerprinter, SplitMix64};
use sketchtree_tree::{PruferSeq, Tree};

/// Degree of the label-name fingerprint behind [`Mapper::label_code`].
/// Deliberately independent of the sequence-fingerprint degree: label-code
/// collisions silently alias *labels* (not just patterns), so the space is
/// kept near the 63-bit maximum regardless of how small a deployment tunes
/// the pattern fingerprint.
const LABEL_CODE_DEGREE: u32 = 61;

/// Derivation constant separating the label-code polynomial from the
/// sequence polynomial drawn from the same `mapping_seed`.
const LABEL_CODE_STREAM: u64 = 0x4C41_4245_4C43_4F44; // "LABELCOD"

/// Maps patterns to one-dimensional values, deterministically per seed.
///
/// ```
/// use sketchtree_core::Mapper;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let (a, b) = (labels.intern("A"), labels.intern("B"));
/// let m = Mapper::new(31, 42);
/// let v1 = m.map_tree(&Tree::node(a, vec![Tree::leaf(b)]));
/// let v2 = m.map_tree(&Tree::node(b, vec![Tree::leaf(a)]));
/// assert_ne!(v1, v2); // distinct patterns, distinct values
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    fp: RabinFingerprinter,
    label_fp: RabinFingerprinter,
}

impl Mapper {
    /// Creates a mapper with a random irreducible polynomial of the given
    /// degree (the paper uses 31) derived from `seed`.
    pub fn new(degree: u32, seed: u64) -> Self {
        Self {
            fp: RabinFingerprinter::new(degree, seed),
            label_fp: RabinFingerprinter::new(
                LABEL_CODE_DEGREE,
                SplitMix64::derive(seed, LABEL_CODE_STREAM),
            ),
        }
    }

    /// The fingerprint degree.
    pub fn degree(&self) -> u32 {
        self.fp.degree()
    }

    /// Maps an already-encoded Prüfer sequence pair.
    pub fn map_seq(&self, seq: &PruferSeq) -> u64 {
        self.fp.fingerprint_symbols(&seq.symbols())
    }

    /// Encodes a pattern tree and maps it: `PF(LPS(T) . NPS(T))` with the
    /// fingerprint in place of `PF`.
    pub fn map_tree(&self, tree: &Tree) -> u64 {
        self.map_seq(&PruferSeq::encode(tree))
    }

    /// Canonical code for a label *name*: a Rabin fingerprint of the name's
    /// bytes (the Section 6.1 table-free alternative to interned ids).
    ///
    /// Unlike `Label::code()` — which is the interning index plus one and
    /// therefore depends on the order labels were first seen — this code is
    /// a pure function of `(mapping seed, name bytes)`, so two synopses
    /// that interned the same labels in *different* orders still map every
    /// pattern to the same value.  That property is what makes sketch
    /// counters from independently built synopses addable.  Never returns
    /// 0, preserving the reserved-pad-symbol convention of `Label::code`.
    pub fn label_code(&self, name: &str) -> u64 {
        match self.label_fp.fingerprint_bytes(name.as_bytes()) {
            0 => 1,
            c => c,
        }
    }

    /// Maps an already-canonicalized symbol sequence (LPS symbols replaced
    /// by [`Mapper::label_code`] values, NPS numbers unchanged).
    pub fn map_symbols(&self, symbols: &[u64]) -> u64 {
        self.fp.fingerprint_symbols(symbols)
    }

    /// Maps many canonicalized symbol sequences packed back-to-back in one
    /// buffer — the batch form of [`Mapper::map_symbols`] the ingest hot
    /// path uses.  `ends[i]` is the exclusive end offset of sequence `i`;
    /// one value per sequence is appended to `out`, each identical to
    /// `map_symbols` of that segment.
    pub fn map_symbol_segments(&self, symbols: &[u64], ends: &[u32], out: &mut Vec<u64>) {
        self.fp.fingerprint_segments(symbols, ends, out);
    }

    /// The exact pairing-function mapping (Section 2.2), padding the symbol
    /// tuple to `pad_len` symbols with the reserved pad symbol 0.
    ///
    /// # Panics
    /// Panics if the sequence is longer than `pad_len` (see
    /// `sketchtree_hash::pairing::pair_padded_u64`).
    pub fn map_exact(seq: &PruferSeq, pad_len: usize) -> BigNat {
        pairing::pair_padded_u64(&seq.symbols(), pad_len, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{LabelTable, Tree};

    fn trees() -> (LabelTable, Vec<Tree>) {
        let mut lt = LabelTable::new();
        let (x, y, z) = (lt.intern("X"), lt.intern("Y"), lt.intern("Z"));
        let ts = vec![
            Tree::leaf(x),
            Tree::node(x, vec![Tree::leaf(y)]),
            Tree::node(x, vec![Tree::leaf(z)]),
            Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]),
            Tree::node(x, vec![Tree::leaf(z), Tree::leaf(y)]),
            Tree::node(x, vec![Tree::node(y, vec![Tree::leaf(z)])]),
            Tree::node(y, vec![Tree::leaf(x)]),
        ];
        (lt, ts)
    }

    #[test]
    fn deterministic_and_seed_dependent() {
        let (_, ts) = trees();
        let a = Mapper::new(31, 5);
        let b = Mapper::new(31, 5);
        let c = Mapper::new(31, 6);
        for t in &ts {
            assert_eq!(a.map_tree(t), b.map_tree(t));
        }
        assert!(ts.iter().any(|t| a.map_tree(t) != c.map_tree(t)));
    }

    #[test]
    fn distinct_patterns_distinct_values() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 1);
        let vals: std::collections::HashSet<u64> = ts.iter().map(|t| m.map_tree(t)).collect();
        assert_eq!(vals.len(), ts.len(), "fingerprint collision in tiny set");
    }

    #[test]
    fn exact_mapping_is_injective_and_order_sensitive() {
        let (_, ts) = trees();
        let seqs: Vec<PruferSeq> = ts.iter().map(PruferSeq::encode).collect();
        let pad = seqs.iter().map(|s| s.symbols().len()).max().unwrap();
        let vals: std::collections::HashSet<String> = seqs
            .iter()
            .map(|s| Mapper::map_exact(s, pad).to_string())
            .collect();
        assert_eq!(vals.len(), ts.len());
    }

    #[test]
    fn map_tree_equals_map_seq_of_encoding() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 9);
        for t in &ts {
            assert_eq!(m.map_tree(t), m.map_seq(&PruferSeq::encode(t)));
        }
    }

    #[test]
    fn label_codes_depend_on_name_and_seed_only() {
        let a = Mapper::new(31, 5);
        let b = Mapper::new(17, 5); // sequence degree differs, same seed
        let c = Mapper::new(31, 6);
        for name in ["author", "article", "x", "", "ünïcode"] {
            assert_eq!(a.label_code(name), b.label_code(name), "{name}");
            assert_ne!(a.label_code(name), 0, "{name}: pad symbol reserved");
        }
        // Names shorter than the fingerprint degree reduce to their raw
        // bits (polynomial-independent, hence injective); seed sensitivity
        // only shows once the name exceeds 61 bits.
        assert!(["organization", "proceedings", "incollection"]
            .iter()
            .any(|n| a.label_code(n) != c.label_code(n)));
    }

    #[test]
    fn values_fit_degree() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 2);
        for t in &ts {
            assert!(m.map_tree(t) < (1 << 31));
        }
    }
}
