//! Pattern → one-dimensional value.
//!
//! Paper Example 2: a pattern's LPS and NPS are concatenated into one long
//! tuple and mapped to a single number.  Two mappings are implemented:
//!
//! * [`Mapper::map_tree`] / [`Mapper::map_seq`] — **Rabin fingerprints**
//!   (Section 6.1, the paper's experimental configuration, degree 31 by
//!   default): the symbol sequence is fingerprinted modulo a random
//!   irreducible GF(2) polynomial.  Collisions are possible but the
//!   probability is `≈ pairs · len / 2^degree`; at degree 31 with the
//!   paper's ~10⁷ distinct patterns a per-pair collision is ~10⁻⁹ scaled by
//!   sequence bit-length — and because the exact baseline in this repo keys
//!   on the *same* fingerprints, collisions perturb measured "truth" and
//!   estimates identically.  Degree 61 is available when a deployment needs
//!   collisions to be negligible outright.
//! * [`Mapper::map_exact`] — the **pairing function** of Section 2.2,
//!   evaluated exactly over arbitrary-precision naturals with the padding
//!   convention of Section 2.3.  Injective, but the values grow doubly
//!   exponentially; used as the reference in tests and available for
//!   applications with tiny patterns.

use sketchtree_hash::{pairing, BigNat, RabinFingerprinter};
use sketchtree_tree::{PruferSeq, Tree};

/// Maps patterns to one-dimensional values, deterministically per seed.
///
/// ```
/// use sketchtree_core::Mapper;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let (a, b) = (labels.intern("A"), labels.intern("B"));
/// let m = Mapper::new(31, 42);
/// let v1 = m.map_tree(&Tree::node(a, vec![Tree::leaf(b)]));
/// let v2 = m.map_tree(&Tree::node(b, vec![Tree::leaf(a)]));
/// assert_ne!(v1, v2); // distinct patterns, distinct values
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    fp: RabinFingerprinter,
}

impl Mapper {
    /// Creates a mapper with a random irreducible polynomial of the given
    /// degree (the paper uses 31) derived from `seed`.
    pub fn new(degree: u32, seed: u64) -> Self {
        Self {
            fp: RabinFingerprinter::new(degree, seed),
        }
    }

    /// The fingerprint degree.
    pub fn degree(&self) -> u32 {
        self.fp.degree()
    }

    /// Maps an already-encoded Prüfer sequence pair.
    pub fn map_seq(&self, seq: &PruferSeq) -> u64 {
        self.fp.fingerprint_symbols(&seq.symbols())
    }

    /// Encodes a pattern tree and maps it: `PF(LPS(T) . NPS(T))` with the
    /// fingerprint in place of `PF`.
    pub fn map_tree(&self, tree: &Tree) -> u64 {
        self.map_seq(&PruferSeq::encode(tree))
    }

    /// The exact pairing-function mapping (Section 2.2), padding the symbol
    /// tuple to `pad_len` symbols with the reserved pad symbol 0.
    ///
    /// # Panics
    /// Panics if the sequence is longer than `pad_len` (see
    /// `sketchtree_hash::pairing::pair_padded_u64`).
    pub fn map_exact(seq: &PruferSeq, pad_len: usize) -> BigNat {
        pairing::pair_padded_u64(&seq.symbols(), pad_len, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{LabelTable, Tree};

    fn trees() -> (LabelTable, Vec<Tree>) {
        let mut lt = LabelTable::new();
        let (x, y, z) = (lt.intern("X"), lt.intern("Y"), lt.intern("Z"));
        let ts = vec![
            Tree::leaf(x),
            Tree::node(x, vec![Tree::leaf(y)]),
            Tree::node(x, vec![Tree::leaf(z)]),
            Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]),
            Tree::node(x, vec![Tree::leaf(z), Tree::leaf(y)]),
            Tree::node(x, vec![Tree::node(y, vec![Tree::leaf(z)])]),
            Tree::node(y, vec![Tree::leaf(x)]),
        ];
        (lt, ts)
    }

    #[test]
    fn deterministic_and_seed_dependent() {
        let (_, ts) = trees();
        let a = Mapper::new(31, 5);
        let b = Mapper::new(31, 5);
        let c = Mapper::new(31, 6);
        for t in &ts {
            assert_eq!(a.map_tree(t), b.map_tree(t));
        }
        assert!(ts.iter().any(|t| a.map_tree(t) != c.map_tree(t)));
    }

    #[test]
    fn distinct_patterns_distinct_values() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 1);
        let vals: std::collections::HashSet<u64> = ts.iter().map(|t| m.map_tree(t)).collect();
        assert_eq!(vals.len(), ts.len(), "fingerprint collision in tiny set");
    }

    #[test]
    fn exact_mapping_is_injective_and_order_sensitive() {
        let (_, ts) = trees();
        let seqs: Vec<PruferSeq> = ts.iter().map(PruferSeq::encode).collect();
        let pad = seqs.iter().map(|s| s.symbols().len()).max().unwrap();
        let vals: std::collections::HashSet<String> = seqs
            .iter()
            .map(|s| Mapper::map_exact(s, pad).to_string())
            .collect();
        assert_eq!(vals.len(), ts.len());
    }

    #[test]
    fn map_tree_equals_map_seq_of_encoding() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 9);
        for t in &ts {
            assert_eq!(m.map_tree(t), m.map_seq(&PruferSeq::encode(t)));
        }
    }

    #[test]
    fn values_fit_degree() {
        let (_, ts) = trees();
        let m = Mapper::new(31, 2);
        for t in &ts {
            assert!(m.map_tree(t) < (1 << 31));
        }
    }
}
