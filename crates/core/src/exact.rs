//! The exact-counting baseline: one counter per distinct pattern.
//!
//! Paper Section 1 sizes this strawman — `(1/n)·C(2n−2, n−1)·|Σ|ⁿ` counters
//! in the worst case — and Table 1 reports over 7 and 11 *million* distinct
//! patterns for the two real datasets.  We implement it anyway, for three
//! reasons: it is the ground truth against which every relative error in
//! Section 7 is measured; its memory footprint is the denominator of the
//! paper's memory-savings claim; and it drives workload generation (queries
//! are drawn from the observed pattern population by selectivity).
//!
//! Counters are keyed by the same one-dimensional mapping the sketches see,
//! so "truth" and estimate measure the same quantity even in the presence of
//! fingerprint collisions.  [`ExactCounter::with_sequences`] additionally
//! keys by the full Prüfer sequence pair, which lets tests measure the
//! collision rate itself.

use sketchtree_tree::PruferSeq;
use std::collections::HashMap;

/// Exact frequencies of mapped pattern values.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    counts: HashMap<u64, u64>,
    total: u64,
    /// Optional full-sequence index for collision diagnostics.
    sequences: Option<HashMap<PruferSeq, u64>>,
}

impl ExactCounter {
    /// Creates a counter keyed by mapped values only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a counter that additionally tracks full sequences (more
    /// memory; lets [`ExactCounter::fingerprint_collisions`] report how many
    /// distinct sequences share a mapped value).
    pub fn with_sequences() -> Self {
        Self {
            sequences: Some(HashMap::new()),
            ..Self::default()
        }
    }

    /// Records one occurrence of a mapped value.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records one occurrence with its sequence (needed for collision
    /// diagnostics; the value must be the mapping of the sequence).
    pub fn record_seq(&mut self, value: u64, seq: &PruferSeq) {
        self.record(value);
        if let Some(seqs) = &mut self.sequences {
            *seqs.entry(seq.clone()).or_insert(0) += 1;
        }
    }

    /// Adds another counter's frequencies into this one (shard merge).
    ///
    /// Both counters must key values in a shared space — the canonical
    /// label coding guarantees that for synopses with equal mapping
    /// configuration.  The optional sequence index is *not* merged:
    /// `PruferSeq` keys embed label ids from the recording side's table,
    /// so after a merge [`ExactCounter::fingerprint_collisions`] reflects
    /// only locally recorded sequences.
    pub fn merge_from(&mut self, other: &Self) {
        for (&v, &c) in &other.counts {
            let slot = self.counts.entry(v).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// The exact count of a mapped value.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total pattern instances recorded (the stream length for selectivity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct mapped values — the paper's "# of distinct tree
    /// patterns" column of Table 1 (modulo fingerprint collisions).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact self-join size `Σ f_i²` of the mapped stream — the quantity
    /// Theorems 1–2 tie accuracy to.
    pub fn self_join_size(&self) -> u128 {
        self.counts
            .values()
            .map(|&f| u128::from(f) * u128::from(f))
            .sum()
    }

    /// Memory a deterministic deployment would need, in bytes (8-byte key +
    /// 8-byte counter per distinct pattern, ignoring hash-table overhead —
    /// i.e. a lower bound, which favours the baseline).
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * 16
    }

    /// Selectivity of a mapped value: `count / total`.
    pub fn selectivity(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(value) as f64 / self.total as f64
    }

    /// Iterates `(value, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of distinct sequences minus distinct mapped values: how many
    /// sequence pairs were merged by fingerprint collisions.  Requires
    /// [`ExactCounter::with_sequences`]; returns `None` otherwise.
    pub fn fingerprint_collisions(&self) -> Option<usize> {
        self.sequences
            .as_ref()
            .map(|s| s.len().saturating_sub(self.counts.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{Label, PruferSeq};

    #[test]
    fn counts_and_totals() {
        let mut c = ExactCounter::new();
        for _ in 0..5 {
            c.record(10);
        }
        for _ in 0..3 {
            c.record(20);
        }
        assert_eq!(c.count(10), 5);
        assert_eq!(c.count(20), 3);
        assert_eq!(c.count(99), 0);
        assert_eq!(c.total(), 8);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn self_join_size() {
        let mut c = ExactCounter::new();
        for _ in 0..4 {
            c.record(1);
        }
        for _ in 0..3 {
            c.record(2);
        }
        assert_eq!(c.self_join_size(), 16 + 9);
    }

    #[test]
    fn selectivity() {
        let mut c = ExactCounter::new();
        for _ in 0..25 {
            c.record(1);
        }
        for _ in 0..75 {
            c.record(2);
        }
        assert!((c.selectivity(1) - 0.25).abs() < 1e-12);
        assert_eq!(c.selectivity(404), 0.0);
        assert_eq!(ExactCounter::new().selectivity(1), 0.0);
    }

    #[test]
    fn memory_is_per_distinct() {
        let mut c = ExactCounter::new();
        for v in 0..100 {
            c.record(v);
            c.record(v);
        }
        assert_eq!(c.memory_bytes(), 100 * 16);
    }

    #[test]
    fn collision_tracking() {
        let mut c = ExactCounter::with_sequences();
        let seq_a = PruferSeq {
            lps: vec![Label(0)],
            nps: vec![2],
        };
        let seq_b = PruferSeq {
            lps: vec![Label(1)],
            nps: vec![2],
        };
        // Simulate a collision: both sequences map to value 7.
        c.record_seq(7, &seq_a);
        c.record_seq(7, &seq_b);
        assert_eq!(c.fingerprint_collisions(), Some(1));
        assert_eq!(ExactCounter::new().fingerprint_collisions(), None);
    }

    #[test]
    fn iter_covers_everything() {
        let mut c = ExactCounter::new();
        c.record(1);
        c.record(2);
        c.record(2);
        let mut v: Vec<(u64, u64)> = c.iter().collect();
        v.sort();
        assert_eq!(v, vec![(1, 1), (2, 2)]);
    }
}
