//! Synopsis snapshots: persist a [`SketchTree`] and restore it later.
//!
//! A streaming synopsis earns its keep over long horizons — which means
//! surviving restarts.  A snapshot captures everything that cannot be
//! recomputed: the configuration (so ξ families and the fingerprint
//! polynomial re-derive from their seeds), the label table, the raw sketch
//! counters, the tracked heavy hitters, the structural summary, and the
//! stream counters.  The optional exact baseline is *not* persisted — it
//! is measurement scaffolding and can be arbitrarily large.
//!
//! The format is a small hand-rolled, versioned, length-prefixed binary
//! encoding (magic `SKTR`, little-endian integers, varint-free for
//! simplicity).  No serialization dependencies enter the library crates.
//! Version 2 appends the durability cursor ([`SketchTree::wal_seq`]) so
//! recovery knows which write-ahead-log frames a checkpoint already
//! covers; version-1 snapshots still load (cursor 0 — replay everything
//! the log holds).
//!
//! ```
//! use sketchtree_core::{SketchTree, SketchTreeConfig};
//! use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
//!
//! let mut st = SketchTree::new(SketchTreeConfig::default());
//! let a = st.labels_mut().intern("a");
//! st.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(a)]));
//! let bytes = write_snapshot(&st);
//! let restored = read_snapshot(&bytes).unwrap();
//! assert_eq!(restored.trees_processed(), 1);
//! ```

use crate::sketchtree::{SketchTree, SketchTreeConfig};
use crate::summary::ExpandLimits;
use sketchtree_sketch::{SynopsisConfig, SynopsisState};
use std::fmt;

const MAGIC: &[u8; 4] = b"SKTR";
const VERSION: u32 = 2;
/// Oldest version this build still reads.
const MIN_VERSION: u32 = 1;

/// Errors from [`read_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Snapshot version not understood by this build.
    UnsupportedVersion(u32),
    /// Input ended before the structure was complete.
    Truncated,
    /// A length or count field is implausible (corruption guard).
    Corrupt(&'static str),
    /// Two structurally valid snapshots cannot be merged (configuration
    /// mismatch).  Only produced by [`merge_snapshots`].
    Incompatible(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a SketchTree snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Incompatible(why) => write!(f, "snapshots incompatible: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Merges two serialised snapshots into one: the result is the snapshot a
/// single synopsis would have written after absorbing both shards'
/// streams (byte-identical when top-k is off; estimate-preserving when
/// on — see [`SketchTree::merge`]).  Label tables may differ in content
/// and order; they are reconciled by name.
pub fn merge_snapshots(a: &[u8], b: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let mut left = read_snapshot(a)?;
    let right = read_snapshot(b)?;
    left.merge(&right).map_err(SnapshotError::Incompatible)?;
    Ok(write_snapshot(&left))
}

/// Serialises a synopsis to bytes.
pub fn write_snapshot(st: &SketchTree) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.bytes(MAGIC);
    w.u32(VERSION);
    // --- config ---
    let c = st.config();
    w.usize(c.max_pattern_edges);
    w.u8(u8::from(c.include_single_nodes));
    w.u32(c.fingerprint_degree);
    w.u64(c.mapping_seed);
    w.usize(c.synopsis.s1);
    w.usize(c.synopsis.s2);
    w.usize(c.synopsis.virtual_streams);
    w.usize(c.synopsis.topk);
    w.usize(c.synopsis.independence);
    w.u16(c.synopsis.topk_probability);
    w.u64(c.synopsis.seed);
    w.u8(u8::from(c.maintain_summary));
    w.usize(c.max_arrangements);
    w.usize(c.expand_limits.max_patterns);
    w.usize(c.expand_limits.max_descendant_depth);
    // --- labels ---
    let labels = st.labels();
    w.usize(labels.len());
    for (_, name) in labels.iter() {
        w.str(name);
    }
    // --- synopsis state ---
    let state = st.export_synopsis_state();
    w.usize(state.bank_counters.len());
    for bank in &state.bank_counters {
        w.usize(bank.len());
        for &x in bank {
            w.i64(x);
        }
    }
    for tracked in &state.tracked {
        w.usize(tracked.len());
        for &(v, f) in tracked {
            w.u64(v);
            w.i64(f);
        }
    }
    w.u64(state.values_processed);
    // --- summary ---
    match st.summary() {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            let (labels, transitions) = s.export();
            w.usize(labels.len());
            for l in labels {
                w.u32(l.0);
            }
            w.usize(transitions.len());
            for (p, ch) in transitions {
                w.u32(p.0);
                w.u32(ch.0);
            }
        }
    }
    // --- counters ---
    w.u64(st.trees_processed());
    w.u64(st.patterns_processed());
    // --- durability cursor (v2) ---
    w.u64(st.wal_seq());
    w.0
}

/// Restores a synopsis from bytes produced by [`write_snapshot`].
pub fn read_snapshot(bytes: &[u8]) -> Result<SketchTree, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    // --- config ---
    let config = SketchTreeConfig {
        max_pattern_edges: r.usize_checked("max_pattern_edges", 1 << 16)?,
        include_single_nodes: r.u8()? != 0,
        fingerprint_degree: r.u32()?,
        mapping_seed: r.u64()?,
        synopsis: SynopsisConfig {
            s1: r.usize_checked("s1", 1 << 24)?,
            s2: r.usize_checked("s2", 1 << 24)?,
            virtual_streams: r.usize_checked("virtual_streams", 1 << 24)?,
            topk: r.usize_checked("topk", 1 << 32)?,
            independence: r.usize_checked("independence", 1 << 8)?,
            topk_probability: r.u16()?,
            seed: r.u64()?,
        },
        maintain_summary: r.u8()? != 0,
        track_exact: false, // the baseline is never persisted
        max_arrangements: r.usize_checked("max_arrangements", 1 << 32)?,
        expand_limits: ExpandLimits {
            max_patterns: r.usize_checked("max_patterns", 1 << 32)?,
            max_descendant_depth: r.usize_checked("max_descendant_depth", 1 << 16)?,
        },
    };
    // Structural validations that downstream constructors would otherwise
    // assert on (a corrupted snapshot must error, not panic).  They run
    // *before* any decode loop consumes the header-declared counts: a
    // hostile header must be rejected on sight, not after it has already
    // steered allocations and per-bank loops.
    if config.synopsis.s1 == 0 || config.synopsis.s2 == 0 || config.synopsis.virtual_streams == 0 {
        return Err(SnapshotError::Corrupt("zero sketch geometry"));
    }
    if !(2..=63).contains(&config.fingerprint_degree) {
        return Err(SnapshotError::Corrupt("fingerprint degree out of range"));
    }
    if config.synopsis.independence < 2 || config.synopsis.independence > 64 {
        return Err(SnapshotError::Corrupt("independence out of range"));
    }
    // s1 and s2 are individually capped at 2^24, so a product above the
    // per-bank counter cap — including one that would overflow on 32-bit
    // targets — is a corrupt geometry, caught before it sizes anything.
    let per_bank = config
        .synopsis
        .s1
        .checked_mul(config.synopsis.s2)
        .filter(|&n| n <= 1 << 28)
        .ok_or(SnapshotError::Corrupt("bank geometry overflow"))?;
    // The top-k heaps are pre-sized at construction (one heap of `topk`
    // slots per virtual stream, before a single tracked entry decodes),
    // so a hostile capacity would steer a giant allocation even though
    // the tracked sections themselves are small.  Cap the product the
    // same way the counter slab is capped: real configs sit around
    // 229 × 300 ≈ 7 × 10⁴, a factor of ~240 under this bound.
    if config
        .synopsis
        .topk
        .checked_mul(config.synopsis.virtual_streams)
        .map_or(true, |n| n > 1 << 24)
    {
        return Err(SnapshotError::Corrupt("topk capacity implausible"));
    }
    // --- labels ---
    // Every decoded element of a counted section occupies a known minimum
    // of encoded bytes (a label carries an 8-byte length prefix, a counter
    // is 8 bytes, ...), so each count is bounded against the bytes that
    // are actually left in the buffer before its loop runs.
    let n_labels = r.count_checked("label count", 1 << 32, 8)?;
    let mut label_names = Vec::with_capacity(n_labels.min(1 << 20));
    for _ in 0..n_labels {
        label_names.push(r.str()?);
    }
    // --- synopsis state ---
    let n_banks = r.count_checked("bank count", 1 << 24, 8)?;
    if n_banks != config.synopsis.virtual_streams {
        return Err(SnapshotError::Corrupt("bank count != virtual_streams"));
    }
    let mut bank_counters = Vec::with_capacity(n_banks);
    for _ in 0..n_banks {
        let len = r.count_checked("bank counters", 1 << 28, 8)?;
        if len != per_bank {
            return Err(SnapshotError::Corrupt("bank geometry mismatch"));
        }
        let mut counters = Vec::with_capacity(len);
        for _ in 0..len {
            counters.push(r.i64()?);
        }
        bank_counters.push(counters);
    }
    let mut tracked = Vec::with_capacity(n_banks);
    for _ in 0..n_banks {
        let len = r.count_checked("tracked count", 1 << 28, 16)?;
        if len > config.synopsis.topk {
            return Err(SnapshotError::Corrupt("tracked exceeds topk capacity"));
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push((r.u64()?, r.i64()?));
        }
        tracked.push(entries);
    }
    let values_processed = r.u64()?;
    for entries in &tracked {
        let mut vals: Vec<u64> = entries.iter().map(|&(v, _)| v).collect();
        vals.sort_unstable();
        vals.dedup();
        if vals.len() != entries.len() {
            return Err(SnapshotError::Corrupt("duplicate tracked values"));
        }
    }
    // --- summary ---
    let summary = match r.u8()? {
        0 => None,
        1 => {
            let n = r.count_checked("summary labels", 1 << 32, 4)?;
            let mut labels = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                labels.push(sketchtree_tree::Label(r.u32()?));
            }
            let m = r.count_checked("summary transitions", 1 << 32, 8)?;
            let mut transitions = Vec::with_capacity(m.min(1 << 20));
            for _ in 0..m {
                transitions.push((
                    sketchtree_tree::Label(r.u32()?),
                    sketchtree_tree::Label(r.u32()?),
                ));
            }
            Some((labels, transitions))
        }
        _ => return Err(SnapshotError::Corrupt("summary flag")),
    };
    let trees_processed = r.u64()?;
    let patterns_processed = r.u64()?;
    // v1 predates the write-ahead log: cursor 0 means "no frame is
    // known to be covered", so recovery replays whatever the log holds.
    let wal_seq = if version >= 2 { r.u64()? } else { 0 };
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    // --- reassemble ---
    let state = SynopsisState {
        bank_counters,
        tracked,
        values_processed,
    };
    let mut st = SketchTree::from_snapshot_parts(
        config,
        label_names,
        state,
        summary,
        trees_processed,
        patterns_processed,
    )
    .map_err(SnapshotError::Corrupt)?;
    st.set_wal_seq(wal_seq);
    Ok(st)
}

struct Writer(Vec<u8>);

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Encodes a usize length or config field as u64.
    fn usize(&mut self, v: usize) {
        // lint:allow(L2, reason = "usize -> u64 is widening on all supported targets")
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn usize_checked(&mut self, what: &'static str, max: u64) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        if v > max {
            return Err(SnapshotError::Corrupt(what));
        }
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(what))
    }
    /// Bytes left past the cursor — the ceiling on how many encoded
    /// elements any well-formed section can still hold.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
    /// An element count that must pass both an absolute cap and a
    /// plausibility bound: `count` elements of at least `elem_bytes`
    /// encoded bytes each must fit in the remaining buffer.  Rejecting
    /// an implausible count *before* any `Vec::with_capacity` or decode
    /// loop keeps a hostile header from steering allocation or spinning
    /// a long loop that is doomed to hit end-of-buffer anyway.
    ///
    /// A count over the absolute cap is self-inconsistent regardless of
    /// buffer size — `Corrupt`.  A count that merely needs more bytes
    /// than remain is indistinguishable from a cut-short file (the
    /// power-cut signature), so it reports `Truncated`: the same verdict
    /// the decode loop would have reached at end-of-buffer, delivered
    /// before the allocation instead of after it.
    fn count_checked(
        &mut self,
        what: &'static str,
        max: u64,
        elem_bytes: usize,
    ) -> Result<usize, SnapshotError> {
        let v = self.usize_checked(what, max)?;
        let plausible = v
            .checked_mul(elem_bytes)
            .map_or(false, |need| need <= self.remaining());
        if !plausible {
            return Err(SnapshotError::Truncated);
        }
        Ok(v)
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.usize_checked("string length", 1 << 24)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 label"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_sketch::SynopsisConfig;
    use sketchtree_tree::Tree;

    fn build() -> SketchTree {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: SynopsisConfig {
                s1: 20,
                s2: 5,
                virtual_streams: 11,
                topk: 4,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        });
        let (a, b, c) = {
            let l = st.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"))
        };
        let t1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let t2 = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]);
        for _ in 0..50 {
            st.ingest(&t1);
        }
        for _ in 0..7 {
            st.ingest(&t2);
        }
        st
    }

    #[test]
    fn wal_seq_roundtrips_through_snapshots() {
        let mut st = build();
        assert_eq!(st.wal_seq(), 0);
        st.set_wal_seq(37);
        st.set_wal_seq(12); // monotone: never moves backwards
        assert_eq!(st.wal_seq(), 37);
        let restored = read_snapshot(&write_snapshot(&st)).expect("valid snapshot");
        assert_eq!(restored.wal_seq(), 37);
    }

    #[test]
    fn set_wal_seq_does_not_bump_the_epoch() {
        let mut st = build();
        let epoch = st.epoch();
        st.set_wal_seq(9);
        assert_eq!(st.epoch(), epoch, "the durability cursor is not estimate-visible");
    }

    #[test]
    fn version_1_snapshots_still_load_with_cursor_zero() {
        let mut st = build();
        st.set_wal_seq(99);
        let mut bytes = write_snapshot(&st);
        // Rewrite as a v1 snapshot: version field back to 1, trailing
        // 8-byte cursor dropped — exactly what a pre-WAL build wrote.
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        bytes.truncate(bytes.len() - 8);
        let restored = read_snapshot(&bytes).expect("v1 snapshot loads");
        assert_eq!(restored.wal_seq(), 0);
        assert_eq!(restored.trees_processed(), st.trees_processed());
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let st = build();
        let bytes = write_snapshot(&st);
        let restored = read_snapshot(&bytes).expect("valid snapshot");
        assert_eq!(restored.trees_processed(), st.trees_processed());
        assert_eq!(restored.patterns_processed(), st.patterns_processed());
        for q in ["A(B,C)", "A(B(C))", "B(C)", "A(B)"] {
            assert_eq!(
                restored.count_ordered(q).unwrap(),
                st.count_ordered(q).unwrap(),
                "query {q}"
            );
        }
        assert_eq!(
            restored.tracked_heavy_hitters(),
            st.tracked_heavy_hitters()
        );
        // The summary survives: wildcard queries still work.
        assert_eq!(
            restored.count_ordered("A(*)").unwrap(),
            st.count_ordered("A(*)").unwrap()
        );
    }

    #[test]
    fn restored_synopsis_keeps_streaming() {
        let st = build();
        let bytes = write_snapshot(&st);
        let mut restored = read_snapshot(&bytes).expect("valid");
        // Continue the stream after restore; counts keep moving.
        let a = restored.labels().lookup("A").unwrap();
        let b = restored.labels().lookup("B").unwrap();
        let before = restored.count_ordered("A(B)").unwrap();
        for _ in 0..50 {
            restored.ingest(&Tree::node(a, vec![Tree::leaf(b)]));
        }
        let after = restored.count_ordered("A(B)").unwrap();
        assert!(after > before + 25.0, "{before} -> {after}");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            read_snapshot(b"not a snapshot").err(),
            Some(SnapshotError::BadMagic)
        );
        assert_eq!(read_snapshot(b"").err(), Some(SnapshotError::Truncated));
        let mut bad_version = write_snapshot(&build());
        bad_version[4] = 99;
        assert_eq!(
            read_snapshot(&bad_version).err(),
            Some(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = write_snapshot(&build());
        // Any prefix must fail cleanly, never panic.
        for cut in (0..bytes.len()).step_by(97) {
            let r = read_snapshot(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = write_snapshot(&build());
        bytes.push(0);
        assert_eq!(
            read_snapshot(&bytes).err(),
            Some(SnapshotError::Corrupt("trailing bytes"))
        );
    }

    /// Arbitrary single-byte corruption must never panic — either the
    /// snapshot still parses (the byte was a counter value) or a clean
    /// error comes back.
    #[test]
    fn corruption_never_panics() {
        let bytes = write_snapshot(&build());
        for pos in (0..bytes.len()).step_by(31) {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= flip;
                // Must return, not panic.
                let _ = read_snapshot(&mutated);
            }
        }
    }

    // Byte offsets of header fields in a v2 snapshot (magic 4 + version 4,
    // then the config fields in encode order).  The hostile-header tests
    // below patch these directly; a format change that moves them will
    // fail the sanity assertion in `patch_u64`.
    const OFF_S1: usize = 8 + 8 + 1 + 4 + 8; // past max_pattern_edges, include_single_nodes, fingerprint_degree, mapping_seed
    const OFF_S2: usize = OFF_S1 + 8;
    const OFF_TOPK: usize = OFF_S1 + 8 * 3; // past s1, s2, virtual_streams
    const OFF_LABEL_COUNT: usize = OFF_S1 + 8 * 5 + 2 + 8 + 1 + 8 * 3; // past s1..independence, topk_probability, seed, maintain_summary, limits

    fn patch_u64(bytes: &mut [u8], off: usize, v: u64) {
        bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// A small but fully populated snapshot — every section non-empty —
    /// for the exhaustive per-position sweeps below, whose cost is
    /// quadratic in snapshot size (each of the O(bytes) mutations pays a
    /// full O(bytes) decode).  The header layout is identical to
    /// [`build`]'s, so the `OFF_*` offsets apply unchanged.
    fn build_small() -> SketchTree {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 2,
            synopsis: SynopsisConfig {
                s1: 4,
                s2: 3,
                virtual_streams: 3,
                topk: 2,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        });
        let (a, b, c) = {
            let l = st.labels_mut();
            (l.intern("A"), l.intern("B"), l.intern("C"))
        };
        let t1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let t2 = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]);
        for _ in 0..5 {
            st.ingest(&t1);
        }
        st.ingest(&t2);
        st
    }

    /// A header declaring `s1 = s2 = 2^24` passes the per-field caps but
    /// describes 2^48 counters per bank.  Decode must reject it as corrupt
    /// *before* the bank loops run — historically `per_bank = s1 * s2` was
    /// computed unchecked and only validated after the loops had already
    /// consumed the hostile counts.
    #[test]
    fn hostile_geometry_rejected_before_bank_loops() {
        let mut bytes = write_snapshot(&build());
        patch_u64(&mut bytes, OFF_S1, 1 << 24);
        patch_u64(&mut bytes, OFF_S2, 1 << 24);
        assert_eq!(
            read_snapshot(&bytes).err(),
            Some(SnapshotError::Corrupt("bank geometry overflow"))
        );
        let mut bytes = write_snapshot(&build());
        patch_u64(&mut bytes, OFF_S1, 0);
        assert_eq!(
            read_snapshot(&bytes).err(),
            Some(SnapshotError::Corrupt("zero sketch geometry"))
        );
    }

    /// A label count under the absolute cap but far beyond what the buffer
    /// could hold must fail the remaining-bytes plausibility check instead
    /// of sizing an allocation from attacker-controlled input.  The
    /// verdict is `Truncated` — a sub-cap count needing absent bytes is
    /// indistinguishable from a cut-short file — while a count over the
    /// absolute cap stays `Corrupt` (exercised by the adversarial
    /// integration tests with `u64::MAX`).
    #[test]
    fn hostile_label_count_rejected_by_remaining_bytes() {
        let mut bytes = write_snapshot(&build());
        // Sanity: the patched offset really is the label count.
        let declared = u64::from_le_bytes(bytes[OFF_LABEL_COUNT..OFF_LABEL_COUNT + 8].try_into().unwrap());
        assert_eq!(declared as usize, read_snapshot(&bytes).unwrap().labels().len());
        patch_u64(&mut bytes, OFF_LABEL_COUNT, 1 << 31);
        assert_eq!(read_snapshot(&bytes).err(), Some(SnapshotError::Truncated));
    }

    /// A hostile `topk` passes the per-section `len <= topk` checks for
    /// free (the tracked lists really are small), but construction
    /// pre-sizes one heap of `topk` slots per virtual stream — so the
    /// capacity must be rejected as implausible before anything is built.
    #[test]
    fn hostile_topk_capacity_rejected() {
        let mut bytes = write_snapshot(&build());
        patch_u64(&mut bytes, OFF_TOPK, (1 << 31) + 7);
        assert_eq!(
            read_snapshot(&bytes).err(),
            Some(SnapshotError::Corrupt("topk capacity implausible"))
        );
    }

    /// Sliding a huge-but-capped count over every 8-byte window of the
    /// snapshot: wherever it lands on a section count, the plausibility
    /// guard must reject it; everywhere else decode may succeed or fail,
    /// but never panic and never trust the fabricated length.
    #[test]
    fn hostile_counts_never_trusted() {
        let bytes = write_snapshot(&build_small());
        for pos in 0..bytes.len().saturating_sub(8) {
            let mut mutated = bytes.clone();
            patch_u64(&mut mutated, pos, (1 << 31) + 7);
            let _ = read_snapshot(&mutated);
        }
    }

    /// Truncation fuzz focused on section boundaries: for every prefix cut
    /// inside each counted section the decoder must error cleanly — the
    /// count guards compare against the bytes actually present.
    #[test]
    fn truncated_sections_error_cleanly() {
        let bytes = write_snapshot(&build_small());
        for cut in OFF_LABEL_COUNT..bytes.len() {
            assert!(read_snapshot(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn exact_baseline_not_persisted() {
        let mut st = SketchTree::new(SketchTreeConfig {
            track_exact: true,
            ..SketchTreeConfig::default()
        });
        let a = st.labels_mut().intern("a");
        st.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        let restored = read_snapshot(&write_snapshot(&st)).unwrap();
        assert!(restored.exact().is_none());
    }
}
