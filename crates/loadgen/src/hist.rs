//! Log-linear latency histogram with high-percentile resolution.
//!
//! The metrics crate's [`sketchtree_metrics::Histogram`] uses a dozen
//! fixed buckets — fine for operational dashboards, far too coarse for
//! reading a p999 off a benchmark run.  This histogram records
//! microsecond values exactly below `LINEAR_MAX` (128 µs) and with 64
//! sub-buckets per power of two above it (relative error ≤ 1/64 ≈ 1.6%),
//! the same layout family as HdrHistogram.  Recording is O(1) with no
//! allocation, so it sits on the measurement path without perturbing it.

/// Values below this (µs) get one bucket each — exact.
const LINEAR_MAX: u64 = 128;
/// Sub-buckets per octave above the linear range.
const SUB: u64 = 64;
/// Octaves tracked above the linear range: values up to
/// 2^(7 + OCTAVES) µs ≈ 19 minutes saturate into the last bucket.
const OCTAVES: u64 = 33;
/// Total bucket count.
const BUCKETS: usize = (LINEAR_MAX + OCTAVES * SUB) as usize;

/// A latency histogram over microsecond values.
#[derive(Clone)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for a microsecond value.
    fn index(us: u64) -> usize {
        if us < LINEAR_MAX {
            return us as usize;
        }
        // The highest set bit is >= 7 here.  Each octave m (7, 8, ...)
        // splits into SUB sub-buckets keyed by the 6 bits below the top.
        let m = 63 - u64::from(us.leading_zeros());
        let octave = (m - 7).min(OCTAVES - 1);
        let sub = (us >> (m - 6)) & (SUB - 1);
        (LINEAR_MAX + octave * SUB + sub) as usize
    }

    /// Inclusive upper bound (µs) of bucket `i`, used as the reported
    /// percentile value.
    fn upper_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < LINEAR_MAX {
            return i;
        }
        let octave = (i - LINEAR_MAX) / SUB;
        let sub = (i - LINEAR_MAX) % SUB;
        let m = octave + 7;
        // Reconstruct: top bit at m, next 6 bits = sub, rest saturated.
        (1u64 << m) + ((sub + 1) << (m - 6)) - 1
    }

    /// Records one microsecond value.
    pub fn record(&mut self, us: u64) {
        let idx = Self::index(us).min(BUCKETS - 1);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.sum = self.sum.saturating_add(us);
        self.min = self.min.min(us);
        self.max = self.max.max(us);
    }

    /// Records a [`std::time::Duration`].
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram into this one.
    pub fn merge_from(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (µs); 0 when empty.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (µs); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value (µs) at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the ceil(q·n)-th recorded value.
    ///
    /// `None` when nothing was recorded — an empty histogram has no p999,
    /// and reporting a fabricated 0 µs would read as "everything was
    /// instant" in a committed benchmark document.  With a single sample
    /// every quantile is that sample, which is the honest degenerate
    /// answer.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Never report past the true max (bucket bounds round up).
                return Some(Self::upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_no_quantiles() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    /// A single sample defines every quantile: the answer is that sample,
    /// never a fabricated tail value.
    #[test]
    fn one_sample_answers_every_quantile_with_it() {
        let mut h = LatencyHist::new();
        h.record(77);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(77), "q={q}");
        }
        assert_eq!(h.max(), 77);
    }

    #[test]
    fn linear_range_is_exact() {
        let mut h = LatencyHist::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some((LINEAR_MAX / 2) - 1));
        assert_eq!(h.quantile(1.0), Some(LINEAR_MAX - 1));
        assert_eq!(h.max(), LINEAR_MAX - 1);
    }

    #[test]
    fn log_range_error_is_bounded() {
        let mut h = LatencyHist::new();
        for v in [200u64, 1_000, 10_000, 123_456, 5_000_000] {
            let mut solo = LatencyHist::new();
            solo.record(v);
            let got = solo.quantile(0.5).expect("one sample recorded");
            let err = got.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "{v} -> {got} (err {err})");
            h.record(v);
        }
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let mut h = LatencyHist::new();
        for i in 0..10_000u64 {
            h.record(i * 7 % 90_000);
        }
        let q = |q: f64| h.quantile(q).expect("samples recorded");
        let (p50, p90, p99, p999) = (q(0.50), q(0.90), q(0.99), q(0.999));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999, "{p50} {p90} {p99} {p999}");
        assert!(p999 <= h.max());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        for i in 0..500u64 {
            let v = i * 31 % 40_000;
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn huge_values_saturate_instead_of_panicking() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).expect("one sample recorded") <= u64::MAX);
    }
}
