//! `sketchtree-loadgen` — macro-benchmark and load harness for the
//! `sketchtree serve` SKTP server.
//!
//! This crate drives a *mixed* workload — ingest batches, ad-hoc
//! `COUNT`/`COUNT_ord` and expression queries, and standing-query
//! subscribe/unsubscribe churn — at a configured arrival rate against a
//! running server (or one it spawns in-process), and reports
//! coordinated-omission-free latency percentiles, throughput, and
//! standing-query push lag as a schema-validated
//! `BENCH_loadgen_<scenario>.json`.
//!
//! Methodology (open vs. closed loop, why latency is measured from the
//! *scheduled* start, how to read push lag) lives in docs/benchmarks.md.
//! The module map:
//!
//! * [`scenario`] — the scenario matrix (dataset shape × arrival
//!   process), op mix, and deterministic workload preparation.
//! * [`driver`] — the open-loop driver itself.
//! * [`hist`] — log-linear latency histogram (p999 needs better than a
//!   dozen operational buckets).
//! * [`report`] / [`schema`] — report emission and the validator the
//!   `loadgen-smoke` gate runs.
//! * [`json`] — the minimal JSON tree both of those share.
//!
//! The binary is a thin wrapper over [`run_cli`], which the `sketchtree
//! loadgen` subcommand also calls, so both front-ends accept the same
//! flags.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod driver;
pub mod hist;
pub mod json;
pub mod report;
pub mod scenario;
pub mod schema;

pub use driver::{run, RunConfig, RunOutput};
pub use scenario::{Arrival, DataShape, Mix, OpKind, Scenario};

use std::io::Write;
use std::time::Duration;

/// Usage text shared by the binary and the `sketchtree loadgen`
/// subcommand.
pub const USAGE: &str = "\
usage: sketchtree-loadgen [options]

Drives a mixed SKTP workload and writes BENCH_loadgen_<scenario>.json.

options:
  --scenario <shape-arrival>  scenario cell (default dblp-steady);
                              shapes: dblp treebank deep wide adversarial
                              arrivals: steady bursty
  --addr <host:port>          target server (default: spawn in-process)
  --duration <secs>           scheduled window length (default 10)
  --rate <ops/sec>            mean arrival rate (default 200)
  --mix <spec>                op weights, e.g. ingest=30,count=50,expr=10,subscribe=10
  --threads <n>               worker connections (default 4)
  --batch <n>                 trees per ingest op (default 16)
  --subscribers <n>           standing-query connections (default 2)
  --seed <n>                  workload + schedule seed (default 42)
  --sweep-batch <n>           add a closed-loop sweep batch size
                              (repeatable; default 4,16,64; 0 clears)
  --wal-path <path>           write-ahead log for the spawned server, to
                              measure log-before-ack ingest cost
                              (requires spawning, i.e. no --addr)
  --wal-fsync-every <n>       group commit: fsync every n-th batch
                              (default 1; 0 never fsyncs)
  --out <path>                report path (default BENCH_loadgen_<scenario>.json)
  --print-metrics             dump the driver's metrics registry after the run
  --list-scenarios            print the scenario matrix and exit
  --help                      this text
";

/// Parses flags, runs the scenario, writes the report file, and prints a
/// human summary to `out`.  Returns an error string suitable for stderr;
/// `--help` and `--list-scenarios` short-circuit successfully.
pub fn run_cli(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut cfg = RunConfig::new(Scenario::parse("dblp-steady").ok_or("default scenario")?);
    let mut out_path: Option<String> = None;
    let mut sweep_override: Option<Vec<usize>> = None;
    let mut print_metrics = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                write_out(out, USAGE)?;
                return Ok(());
            }
            "--list-scenarios" => {
                for s in Scenario::matrix() {
                    write_out(out, &format!("{}\n", s.name()))?;
                }
                return Ok(());
            }
            "--scenario" => {
                let v = value("--scenario")?;
                cfg.scenario = Scenario::parse(v)
                    .ok_or_else(|| format!("unknown scenario {v:?}; try --list-scenarios"))?;
            }
            "--addr" => {
                let v = value("--addr")?;
                cfg.addr =
                    Some(v.parse().map_err(|e| format!("--addr {v:?} does not parse: {e}"))?);
            }
            "--duration" => {
                cfg.duration = Duration::from_secs_f64(parse_num(value("--duration")?, "--duration")?);
            }
            "--rate" => cfg.rate = parse_num(value("--rate")?, "--rate")?,
            "--mix" => cfg.mix = Mix::parse(value("--mix")?)?,
            "--threads" => cfg.threads = parse_usize(value("--threads")?, "--threads")?,
            "--batch" => cfg.batch = parse_usize(value("--batch")?, "--batch")?,
            "--subscribers" => {
                cfg.subscribers = parse_usize(value("--subscribers")?, "--subscribers")?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed does not parse: {e}"))?;
            }
            "--sweep-batch" => {
                let n = parse_usize(value("--sweep-batch")?, "--sweep-batch")?;
                let sweeps = sweep_override.get_or_insert_with(Vec::new);
                if n > 0 {
                    sweeps.push(n);
                }
            }
            "--wal-path" => cfg.wal_path = Some(value("--wal-path")?.into()),
            "--wal-fsync-every" => {
                cfg.wal_fsync_every = value("--wal-fsync-every")?
                    .parse::<u32>()
                    .map_err(|e| format!("--wal-fsync-every does not parse: {e}"))?;
            }
            "--out" => out_path = Some(value("--out")?.to_string()),
            "--print-metrics" => print_metrics = true,
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if let Some(sweeps) = sweep_override {
        cfg.sweep_batches = sweeps;
    }
    if cfg.addr.is_some() && cfg.wal_path.is_some() {
        return Err(
            "--wal-path configures the self-spawned server; it cannot reach one named by --addr"
                .to_string(),
        );
    }

    let scenario_name = cfg.scenario.name();
    write_out(
        out,
        &format!(
            "loadgen: scenario={} rate={} ops/s duration={:.1}s threads={} batch={} subscribers={}\n",
            scenario_name,
            cfg.rate,
            cfg.duration.as_secs_f64(),
            cfg.threads,
            cfg.batch,
            cfg.subscribers
        ),
    )?;

    let output = run(&cfg)?;
    if let Err(errs) = schema::validate(&output.report) {
        return Err(format!("internal error: emitted report fails its own schema: {errs:?}"));
    }

    let path = out_path.unwrap_or_else(|| report::bench_path(&scenario_name));
    std::fs::write(&path, output.report.render_pretty())
        .map_err(|e| format!("writing {path}: {e}"))?;

    write_out(out, &summarize(&output.report, &path))?;
    if print_metrics {
        write_out(out, &output.registry.render_text())?;
    }
    Ok(())
}

/// Renders the post-run one-screen summary.
fn summarize(report: &json::Json, path: &str) -> String {
    use json::Json;
    let mut s = String::new();
    let get = |p: &[&str]| report.get_path(p).and_then(Json::as_f64).unwrap_or(0.0);
    for kind in OpKind::ALL {
        let name = kind.name();
        s.push_str(&format!(
            "  {name:>9}: {:>7.0} ops  {:>4.0} err  p50 {:>7.0}us  p99 {:>8.0}us  p999 {:>8.0}us\n",
            get(&["ops", name, "count"]),
            get(&["ops", name, "errors"]),
            get(&["ops", name, "latency_us", "p50"]),
            get(&["ops", name, "latency_us", "p99"]),
            get(&["ops", name, "latency_us", "p999"]),
        ));
    }
    s.push_str(&format!(
        "  push: {} updates, lag p99 {:.0}us, epochs monotone: {}\n",
        get(&["push", "updates"]),
        get(&["push", "lag_us", "p99"]),
        report
            .get_path(&["push", "epochs_monotone"])
            .and_then(Json::as_bool)
            .unwrap_or(false),
    ));
    s.push_str(&format!(
        "  ingest: {:.0} trees ({:.0} trees/s)\n",
        get(&["ingest", "trees"]),
        get(&["ingest", "trees_per_sec"]),
    ));
    if !report.get_path(&["completed_all_scheduled"]).and_then(Json::as_bool).unwrap_or(true) {
        s.push_str(&format!(
            "  WARNING: hard stop tripped, {:.0} scheduled ops abandoned\n",
            get(&["ops_abandoned"])
        ));
    }
    s.push_str(&format!("  report written to {path}\n"));
    s
}

fn write_out(out: &mut dyn Write, text: &str) -> Result<(), String> {
    out.write_all(text.as_bytes()).map_err(|e| format!("writing output: {e}"))
}

fn parse_num(v: &str, flag: &str) -> Result<f64, String> {
    let n: f64 = v.parse().map_err(|e| format!("{flag} does not parse: {e}"))?;
    if n.is_finite() && n > 0.0 {
        Ok(n)
    } else {
        Err(format!("{flag} must be a positive number, got {v}"))
    }
}

fn parse_usize(v: &str, flag: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("{flag} does not parse: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> (Result<(), String>, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let res = run_cli(&args, &mut out);
        (res, String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn help_and_list_short_circuit() {
        let (res, text) = cli(&["--help"]);
        assert!(res.is_ok());
        assert!(text.contains("--scenario"));
        let (res, text) = cli(&["--list-scenarios"]);
        assert!(res.is_ok());
        assert!(text.contains("dblp-steady"));
        assert!(text.contains("adversarial-bursty"));
    }

    #[test]
    fn bad_flags_are_rejected_with_usage() {
        let (res, _) = cli(&["--bogus"]);
        assert!(res.unwrap_err().contains("usage:"));
        let (res, _) = cli(&["--scenario", "nope-steady"]);
        assert!(res.unwrap_err().contains("unknown scenario"));
        let (res, _) = cli(&["--rate", "-3"]);
        assert!(res.unwrap_err().contains("positive"));
        let (res, _) = cli(&["--duration"]);
        assert!(res.unwrap_err().contains("needs a value"));
    }
}
