//! The open-loop driver: schedule, fire, measure, report.
//!
//! # Open loop, no coordinated omission
//!
//! Arrival times are fixed up front by the scenario's
//! [`Arrival`](crate::scenario::Arrival) process at the configured mean
//! rate — they do **not** depend on how
//! fast the server answers.  Worker threads claim op indices from a
//! shared counter, sleep until each op's scheduled start, execute it,
//! and record latency as *completion minus scheduled start*.  When the
//! server falls behind, ops start late and that queueing delay lands in
//! the histogram — which is the whole point: a closed-loop driver (or an
//! open-loop one that times from actual send) silently stops measuring
//! exactly when the server is slowest (coordinated omission; see
//! docs/benchmarks.md).
//!
//! # Measurement paths
//!
//! * Per-op latency and error counts, per [`OpKind`], in
//!   high-resolution [`LatencyHist`]s merged across workers.
//! * Scheduling lag (actual start − scheduled start) as a driver-health
//!   signal: if the *driver* cannot keep up, the report says so rather
//!   than blaming the server.
//! * Push lag for standing queries: subscriber connections register
//!   before the run starts and timestamp every pushed update; at the end
//!   the k-th distinct update epoch is paired with the k-th ingest
//!   acknowledgement.  Approximate by one batch's jitter (the broadcast
//!   and the ack race), clamped at zero; documented in
//!   docs/benchmarks.md.
//!
//! Everything is also mirrored into a [`sketchtree_metrics::Registry`]
//! (`sketchtree_loadgen_*`, see docs/observability.md) so a long-running
//! drive can be scraped like any other component.

use crate::hist::LatencyHist;
use crate::json::Json;
use crate::report;
use crate::scenario::{Mix, OpKind, Scenario, Workload};
use sketchtree_metrics::{Registry, LATENCY_BUCKETS};
use sketchtree_server::wire::SubscribeMode;
use sketchtree_server::{Client, Server, ServerConfig};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything one run needs.  Build with [`RunConfig::new`] and adjust
/// fields; the smoke preset lives in [`RunConfig::smoke`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Scenario cell (shape × arrival).
    pub scenario: Scenario,
    /// Target server; `None` spawns an in-process [`Server`] configured
    /// by the scenario's [`crate::scenario::DataShape::sketch_config`].
    pub addr: Option<SocketAddr>,
    /// Length of the scheduled window.
    pub duration: Duration,
    /// Mean arrival rate, ops/second.
    pub rate: f64,
    /// Op-kind weights.
    pub mix: Mix,
    /// Worker threads (one connection each).
    pub threads: usize,
    /// Trees per ingest batch.
    pub batch: usize,
    /// Standing-query subscriber connections.
    pub subscribers: usize,
    /// Workload + schedule seed.
    pub seed: u64,
    /// Batch sizes for the closed-loop throughput sweep after the main
    /// window; empty disables the sweep.
    pub sweep_batches: Vec<usize>,
    /// Write-ahead-log path for the self-spawned server, to measure the
    /// durability tax of log-before-ack ingest; ignored with `addr`
    /// (the remote server's durability is its own configuration).
    pub wal_path: Option<std::path::PathBuf>,
    /// Group-commit setting passed through with `wal_path`.
    pub wal_fsync_every: u32,
}

impl RunConfig {
    /// Defaults for `scenario`: 10 s, 200 ops/s, 4 threads, batch 16,
    /// 2 subscribers, sweep over 4/16/64.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            addr: None,
            duration: Duration::from_secs(10),
            rate: 200.0,
            mix: Mix::default(),
            threads: 4,
            batch: 16,
            subscribers: 2,
            seed: 42,
            sweep_batches: vec![4, 16, 64],
            wal_path: None,
            wal_fsync_every: 1,
        }
    }

    /// The ~2 s preset the smoke e2e test and the `loadgen-smoke` gate
    /// run: small enough for CI, large enough that every op kind and the
    /// push path fire.
    pub fn smoke(scenario: Scenario) -> Self {
        Self {
            duration: Duration::from_millis(1500),
            rate: 120.0,
            threads: 2,
            batch: 8,
            subscribers: 1,
            sweep_batches: vec![4, 16],
            ..Self::new(scenario)
        }
    }
}

/// A finished run: the schema-valid report plus the live metrics
/// registry that instrumented it.
pub struct RunOutput {
    /// The `BENCH_loadgen_<scenario>.json` document.
    pub report: Json,
    /// Driver-side metrics (`sketchtree_loadgen_*`).
    pub registry: Arc<Registry>,
}

/// Hard ceiling on how long workers keep draining a backlog after the
/// scheduled window ends: `2 × duration + 2 s`.  Abandoning the backlog
/// is reported (`completed_all_scheduled` / `ops_abandoned`), never
/// silent.
fn hard_stop(duration: Duration) -> Duration {
    duration * 2 + Duration::from_secs(2)
}

/// Per-worker measurement state, merged after the run.
struct WorkerStats {
    hists: Vec<LatencyHist>,
    ops: Vec<u64>,
    errors: Vec<u64>,
    sched_lag: LatencyHist,
    trees: u64,
    patterns: u64,
    executed: u64,
    setup_error: Option<String>,
}

impl WorkerStats {
    fn new() -> Self {
        Self {
            hists: OpKind::ALL.iter().map(|_| LatencyHist::new()).collect(),
            ops: vec![0; OpKind::ALL.len()],
            errors: vec![0; OpKind::ALL.len()],
            sched_lag: LatencyHist::new(),
            trees: 0,
            patterns: 0,
            executed: 0,
            setup_error: None,
        }
    }
}

/// Per-subscriber measurement state.
struct SubStats {
    /// Arrival time of the first update carrying each distinct epoch, in
    /// epoch order.
    epoch_arrivals: Vec<Instant>,
    updates: u64,
    max_epoch: u64,
    monotone: bool,
    setup_error: Option<String>,
}

/// Driver-side metric handles (names documented in docs/observability.md).
struct DriverMetrics {
    ops: Vec<Arc<sketchtree_metrics::Counter>>,
    errors: Vec<Arc<sketchtree_metrics::Counter>>,
    op_seconds: Vec<Arc<sketchtree_metrics::Histogram>>,
    sched_lag: Arc<sketchtree_metrics::Histogram>,
    push_lag: Arc<sketchtree_metrics::Histogram>,
    push_updates: Arc<sketchtree_metrics::Counter>,
    ingested_trees: Arc<sketchtree_metrics::Counter>,
}

impl DriverMetrics {
    fn new(registry: &Registry) -> Self {
        let per_kind_counter = |name: &str, help: &str| {
            OpKind::ALL
                .iter()
                .map(|k| registry.counter_with(name, help, &[("kind", k.name())]))
                .collect::<Vec<_>>()
        };
        let ops = per_kind_counter(
            "sketchtree_loadgen_ops_total",
            "Operations completed by the load driver, by kind",
        );
        let errors = per_kind_counter(
            "sketchtree_loadgen_op_errors_total",
            "Operations that failed, by kind",
        );
        let op_seconds = OpKind::ALL
            .iter()
            .map(|k| {
                registry.histogram_with(
                    "sketchtree_loadgen_op_seconds",
                    "Scheduled-start-to-completion latency, by kind",
                    LATENCY_BUCKETS,
                    &[("kind", k.name())],
                )
            })
            .collect();
        Self {
            ops,
            errors,
            op_seconds,
            sched_lag: registry.histogram(
                "sketchtree_loadgen_sched_lag_seconds",
                "How late ops start relative to their open-loop schedule (driver health)",
                LATENCY_BUCKETS,
            ),
            push_lag: registry.histogram(
                "sketchtree_loadgen_push_lag_seconds",
                "Ingest-acknowledgement-to-pushed-update lag for standing queries",
                LATENCY_BUCKETS,
            ),
            push_updates: registry.counter(
                "sketchtree_loadgen_push_updates_total",
                "Standing-query updates received by subscriber connections",
            ),
            ingested_trees: registry.counter(
                "sketchtree_loadgen_ingest_trees_total",
                "Trees acknowledged by the server across ingest ops",
            ),
        }
    }
}

/// Runs one scenario and builds its report.
pub fn run(cfg: &RunConfig) -> Result<RunOutput, String> {
    if cfg.threads == 0 || cfg.rate <= 0.0 || cfg.batch == 0 {
        return Err("threads, rate and batch must all be positive".to_string());
    }
    let shape = cfg.scenario.shape;
    let workload = Arc::new(Workload::prepare(shape, cfg.seed, cfg.batch, 64));

    // Self-spawned servers get one worker per loadgen connection plus
    // slack, so no connection waits in the accept queue for a free
    // worker and queueing measured is the server's, not the pool's.
    let spawned = match cfg.addr {
        Some(_) => None,
        None => {
            let server = Server::start(
                "127.0.0.1:0",
                ServerConfig {
                    workers: cfg.threads + cfg.subscribers + 2,
                    sketch: shape.sketch_config(cfg.seed),
                    wal: cfg.wal_path.clone().map(|path| {
                        sketchtree_server::WalConfig { path, fsync_every: cfg.wal_fsync_every }
                    }),
                    ..ServerConfig::default()
                },
            )
            .map_err(|e| format!("spawning server: {e}"))?;
            Some(server)
        }
    };
    let addr = match (cfg.addr, &spawned) {
        (Some(a), _) => a,
        (None, Some(s)) => s.addr(),
        (None, None) => unreachable!("spawned when addr is None"),
    };

    let registry = Arc::new(Registry::new());
    let metrics = Arc::new(DriverMetrics::new(&registry));

    // --- Subscribers: connect and register before any load flows. ---
    let stop_subs = Arc::new(AtomicBool::new(false));
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let mut sub_handles = Vec::new();
    for _ in 0..cfg.subscribers {
        let stop = stop_subs.clone();
        let ready = ready_tx.clone();
        let metrics = metrics.clone();
        sub_handles.push(std::thread::spawn(move || {
            subscriber_loop(addr, shape, &stop, &ready, &metrics)
        }));
    }
    drop(ready_tx);
    for _ in 0..cfg.subscribers {
        ready_rx
            .recv()
            .map_err(|_| "a subscriber thread died before registering".to_string())?;
    }

    // --- Workers: open-loop mixed load. ---
    let next_op = Arc::new(AtomicU64::new(0));
    let next_batch = Arc::new(AtomicUsize::new(0));
    let ingest_acks: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let mut worker_handles = Vec::new();
    for _ in 0..cfg.threads {
        let cfg = cfg.clone();
        let workload = workload.clone();
        let next_op = next_op.clone();
        let next_batch = next_batch.clone();
        let ingest_acks = ingest_acks.clone();
        let metrics = metrics.clone();
        worker_handles.push(std::thread::spawn(move || {
            worker_loop(addr, &cfg, &workload, start, &next_op, &next_batch, &ingest_acks, &metrics)
        }));
    }

    let mut stats = WorkerStats::new();
    for h in worker_handles {
        let w = h.join().map_err(|_| "a worker thread panicked".to_string())?;
        for (i, hist) in w.hists.iter().enumerate() {
            stats.hists[i].merge_from(hist);
            stats.ops[i] += w.ops[i];
            stats.errors[i] += w.errors[i];
        }
        stats.sched_lag.merge_from(&w.sched_lag);
        stats.trees += w.trees;
        stats.patterns += w.patterns;
        stats.executed += w.executed;
        if stats.setup_error.is_none() {
            stats.setup_error = w.setup_error;
        }
    }
    let elapsed = start.elapsed();
    if let Some(e) = stats.setup_error {
        stop_subs.store(true, Ordering::SeqCst);
        for h in sub_handles {
            let _ = h.join();
        }
        return Err(format!("worker setup failed: {e}"));
    }

    // Let in-flight pushes drain, then stop the subscribers.
    std::thread::sleep(Duration::from_millis(300));
    stop_subs.store(true, Ordering::SeqCst);
    let mut subs = Vec::new();
    for h in sub_handles {
        subs.push(h.join().map_err(|_| "a subscriber thread panicked".to_string())?);
    }
    for s in &subs {
        if let Some(e) = &s.setup_error {
            return Err(format!("subscriber setup failed: {e}"));
        }
    }

    // Push lag: pair each subscriber's k-th distinct epoch arrival with
    // the k-th ingest ack, clamping the broadcast/ack race to zero.
    let acks = ingest_acks.lock().map_err(|_| "ack mutex poisoned".to_string())?;
    let mut push_lag = LatencyHist::new();
    let mut updates_total = 0u64;
    let mut max_epoch = 0u64;
    let mut monotone = true;
    for s in &subs {
        updates_total += s.updates;
        max_epoch = max_epoch.max(s.max_epoch);
        monotone &= s.monotone;
        for (k, arrival) in s.epoch_arrivals.iter().enumerate() {
            let Some(ack) = acks.get(k) else { break };
            let lag = arrival.saturating_duration_since(*ack);
            push_lag.record_duration(lag);
            metrics.push_lag.observe(lag.as_secs_f64());
        }
    }
    drop(acks);

    // How many ops were scheduled inside the window but never executed
    // (only nonzero when the hard stop tripped).
    let duration_secs = cfg.duration.as_secs_f64();
    let mut scheduled_total = stats.executed;
    while cfg.scenario.arrival.schedule(scheduled_total, cfg.rate) < duration_secs {
        scheduled_total += 1;
    }
    let abandoned = scheduled_total.saturating_sub(stats.executed);

    // --- Closed-loop throughput-vs-batch-size sweep. ---
    let sweep = run_sweep(addr, cfg, &workload)?;

    // Server-side counters, when the server speaks our metrics opcode.
    let server_excerpt = fetch_server_excerpt(addr);

    let report = report::build(report::BuildInput {
        cfg,
        elapsed,
        op_hists: &stats.hists,
        op_counts: &stats.ops,
        op_errors: &stats.errors,
        sched_lag: &stats.sched_lag,
        trees: stats.trees,
        patterns: stats.patterns,
        push_lag: &push_lag,
        updates: updates_total,
        max_epoch,
        monotone,
        abandoned,
        sweep: &sweep,
        server_excerpt,
    });

    if let Some(server) = spawned {
        server.shutdown().map_err(|e| format!("server shutdown: {e}"))?;
    }
    Ok(RunOutput { report, registry })
}

/// One worker: claim → sleep to schedule → execute → record.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    addr: SocketAddr,
    cfg: &RunConfig,
    workload: &Workload,
    start: Instant,
    next_op: &AtomicU64,
    next_batch: &AtomicUsize,
    ingest_acks: &Mutex<Vec<Instant>>,
    metrics: &DriverMetrics,
) -> WorkerStats {
    let mut stats = WorkerStats::new();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            stats.setup_error = Some(e.to_string());
            return stats;
        }
    };
    let duration_secs = cfg.duration.as_secs_f64();
    let stop_at = hard_stop(cfg.duration);
    loop {
        let i = next_op.fetch_add(1, Ordering::Relaxed);
        let sched = cfg.scenario.arrival.schedule(i, cfg.rate);
        if sched >= duration_secs {
            break;
        }
        if start.elapsed() >= stop_at {
            // Backlog abandoned; the caller reports it.  Un-claim so the
            // scheduled-vs-executed accounting stays exact.
            next_op.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        let sched_d = Duration::from_secs_f64(sched);
        if let Some(wait) = sched_d.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let lag = start.elapsed().saturating_sub(sched_d);
        stats.sched_lag.record_duration(lag);
        metrics.sched_lag.observe(lag.as_secs_f64());

        let kind = cfg.mix.kind_for(cfg.seed, i);
        let kidx = OpKind::ALL.iter().position(|&k| k == kind).unwrap_or(0);
        let outcome = execute_op(
            &mut client,
            kind,
            cfg,
            workload,
            next_batch,
            i,
            &mut stats,
            ingest_acks,
            metrics,
        );
        stats.executed += 1;
        // Coordinated-omission-free: latency runs from the *scheduled*
        // start, so queueing behind a slow server is included.
        let latency = start.elapsed().saturating_sub(sched_d);
        match outcome {
            Ok(()) => {
                stats.ops[kidx] += 1;
                stats.hists[kidx].record_duration(latency);
                metrics.ops[kidx].inc();
                metrics.op_seconds[kidx].observe(latency.as_secs_f64());
            }
            Err(_) => {
                stats.errors[kidx] += 1;
                metrics.errors[kidx].inc();
            }
        }
    }
    stats
}

/// Executes one operation of `kind`.
#[allow(clippy::too_many_arguments)]
fn execute_op(
    client: &mut Client,
    kind: OpKind,
    cfg: &RunConfig,
    workload: &Workload,
    next_batch: &AtomicUsize,
    op_index: u64,
    stats: &mut WorkerStats,
    ingest_acks: &Mutex<Vec<Instant>>,
    metrics: &DriverMetrics,
) -> Result<(), String> {
    let shape = cfg.scenario.shape;
    let pick = |texts: &[&str]| -> String {
        let h = crate::scenario::splitmix64(cfg.seed ^ op_index.rotate_left(17));
        texts[(h % texts.len() as u64) as usize].to_string()
    };
    match kind {
        OpKind::Ingest => {
            let b = next_batch.fetch_add(1, Ordering::Relaxed) % workload.batches.len();
            let summary = client
                .ingest_trees(workload.labels.clone(), workload.batches[b].clone())
                .map_err(|e| e.to_string())?;
            stats.trees += summary.trees;
            stats.patterns += summary.patterns;
            metrics.ingested_trees.add(summary.trees);
            if let Ok(mut acks) = ingest_acks.lock() {
                acks.push(Instant::now());
            }
            Ok(())
        }
        OpKind::Count => {
            client.count_ordered(&pick(shape.count_queries())).map_err(|e| e.to_string())?;
            Ok(())
        }
        OpKind::Expr => {
            client.expr(&pick(shape.expr_queries())).map_err(|e| e.to_string())?;
            Ok(())
        }
        OpKind::Subscribe => {
            let q = pick(shape.standing_queries());
            let (id, _epoch) =
                client.subscribe(SubscribeMode::Ordered, &q).map_err(|e| e.to_string())?;
            client.unsubscribe(id).map_err(|e| e.to_string())?;
            Ok(())
        }
    }
}

/// One subscriber connection: register the shape's standing queries,
/// then timestamp every pushed update until stopped.
fn subscriber_loop(
    addr: SocketAddr,
    shape: crate::scenario::DataShape,
    stop: &AtomicBool,
    ready: &std::sync::mpsc::Sender<()>,
    metrics: &DriverMetrics,
) -> SubStats {
    let mut stats = SubStats {
        epoch_arrivals: Vec::new(),
        updates: 0,
        max_epoch: 0,
        monotone: true,
        setup_error: None,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            stats.setup_error = Some(e.to_string());
            let _ = ready.send(());
            return stats;
        }
    };
    for q in shape.standing_queries() {
        if let Err(e) = client.subscribe(SubscribeMode::Ordered, q) {
            stats.setup_error = Some(e.to_string());
            let _ = ready.send(());
            return stats;
        }
    }
    let _ = ready.send(());
    let mut last_epoch_by_id: HashMap<u64, u64> = HashMap::new();
    let mut last_distinct_epoch = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match client.next_update(Duration::from_millis(100)) {
            Ok(Some(u)) => {
                let now = Instant::now();
                stats.updates += 1;
                metrics.push_updates.inc();
                stats.max_epoch = stats.max_epoch.max(u.epoch);
                if let Some(&prev) = last_epoch_by_id.get(&u.id) {
                    if u.epoch <= prev {
                        stats.monotone = false;
                    }
                }
                last_epoch_by_id.insert(u.id, u.epoch);
                // One arrival per distinct epoch (each batch pushes one
                // update per registered query).
                if u.epoch > last_distinct_epoch {
                    last_distinct_epoch = u.epoch;
                    stats.epoch_arrivals.push(now);
                }
            }
            Ok(None) => {}
            Err(_) => break, // connection gone; report what we saw
        }
    }
    stats
}

/// Closed-loop ingest-only sweep: saturate one connection per batch size
/// and record trees/second plus in-loop p99.  Closed loop is the right
/// tool *here* — throughput capacity is a supply question, not a latency
/// one (docs/benchmarks.md, "Two loops for two questions").
fn run_sweep(
    addr: SocketAddr,
    cfg: &RunConfig,
    workload: &Workload,
) -> Result<Vec<report::SweepRow>, String> {
    let mut rows = Vec::new();
    if cfg.sweep_batches.is_empty() {
        return Ok(rows);
    }
    let mut client = Client::connect(addr).map_err(|e| format!("sweep connect: {e}"))?;
    // Flatten the prepared batches into one pool, re-chunked per size.
    let pool: Vec<_> = workload.batches.iter().flatten().cloned().collect();
    let window = (cfg.duration / 6).clamp(Duration::from_millis(250), Duration::from_secs(2));
    for &batch in &cfg.sweep_batches {
        if batch == 0 || pool.is_empty() {
            continue;
        }
        let mut hist = LatencyHist::new();
        let mut trees = 0u64;
        let mut cursor = 0usize;
        let start = Instant::now();
        while start.elapsed() < window {
            let mut chunk = Vec::with_capacity(batch);
            for _ in 0..batch {
                chunk.push(pool[cursor % pool.len()].clone());
                cursor += 1;
            }
            let op_start = Instant::now();
            let summary = client
                .ingest_trees(workload.labels.clone(), chunk)
                .map_err(|e| format!("sweep ingest: {e}"))?;
            hist.record_duration(op_start.elapsed());
            trees += summary.trees;
        }
        let secs = start.elapsed().as_secs_f64();
        rows.push(report::SweepRow {
            batch,
            trees_per_sec: trees as f64 / secs,
            // Every sweep row records at least one batch round-trip, so a
            // missing quantile can only mean an empty window; report 0
            // rather than making the row's type nullable.
            p99_us: hist.quantile(0.99).unwrap_or(0),
            batches: hist.count(),
        });
    }
    Ok(rows)
}

/// Pulls a few server-side counters over the SKTP metrics opcode for the
/// report's `server` block.  Best-effort: an older or foreign server
/// without the opcode just yields `None`.
fn fetch_server_excerpt(addr: SocketAddr) -> Option<Json> {
    let mut client = Client::connect(addr).ok()?;
    let text = client.metrics(true).ok()?;
    let all = Json::parse(&text).ok()?;
    let mut out = Json::obj();
    let mut found = false;
    for name in [
        "sktp_connections_accepted_total",
        "sktp_frames_total",
        "sktp_push_updates_total",
        "sktp_slow_subscriber_evictions_total",
        "sktp_error_responses_total",
    ] {
        if let Some(v) = find_metric_value(&all, name) {
            out.set(name, Json::Num(v));
            found = true;
        }
    }
    found.then_some(out)
}

/// Reads one counter family out of the server's JSON exposition
/// (`name → {type, help, series: [{labels, value}]}`), summing across
/// labeled series.
fn find_metric_value(doc: &Json, name: &str) -> Option<f64> {
    let family = doc.get(name)?;
    let Some(Json::Arr(series)) = family.get("series") else {
        return family.as_f64();
    };
    let mut sum = 0.0;
    let mut any = false;
    for s in series {
        if let Some(n) = s.get("value").and_then(Json::as_f64) {
            sum += n;
            any = true;
        }
    }
    any.then_some(sum)
}
