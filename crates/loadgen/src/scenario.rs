//! The scenario matrix: data shape × arrival process, plus the op mix.
//!
//! A *scenario* names everything a run needs that isn't a knob: which
//! tree generator feeds ingest, which query texts the ad-hoc and
//! standing traffic use, and whether requests arrive steadily or in
//! bursts.  Scenario names are `<shape>-<arrival>` (`dblp-steady`,
//! `adversarial-bursty`) and become the `BENCH_loadgen_<scenario>.json`
//! file name, so a given trajectory file always measures the same thing
//! PR-over-PR.

use sketchtree_core::sketchtree::SketchTreeConfig;
use sketchtree_datagen::{DblpGen, SynthGen, SynthShape, TreebankGen};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::{Label, LabelTable, Tree};

/// Which generator feeds the ingest stream (and which queries fit it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataShape {
    /// Shallow, bushy, value-rich — the paper's DBLP analogue.
    Dblp,
    /// Deep, narrow, recursive — the paper's TREEBANK analogue.
    Treebank,
    /// Synthetic chains past TREEBANK's depth (see `sketchtree-datagen`'s
    /// `synth` module).
    Deep,
    /// Synthetic stars past DBLP's fanout.
    Wide,
    /// Identical-sibling stars — arrangement-cap worst case.
    Adversarial,
}

impl DataShape {
    /// All shapes, in scenario-matrix order.
    pub const ALL: [DataShape; 5] = [
        DataShape::Dblp,
        DataShape::Treebank,
        DataShape::Deep,
        DataShape::Wide,
        DataShape::Adversarial,
    ];

    /// Lowercase shape name.
    pub fn name(self) -> &'static str {
        match self {
            DataShape::Dblp => "dblp",
            DataShape::Treebank => "treebank",
            DataShape::Deep => "deep",
            DataShape::Wide => "wide",
            DataShape::Adversarial => "adversarial",
        }
    }

    /// Parses [`DataShape::name`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == s)
    }

    /// Sketch configuration a self-spawned server uses for this shape:
    /// the paper's `k` for the real-corpus analogues (Table 1), a smaller
    /// `k` for the synthetic extremes whose per-tree pattern counts
    /// explode combinatorially.
    pub fn sketch_config(self, seed: u64) -> SketchTreeConfig {
        let max_pattern_edges = match self {
            DataShape::Dblp => 3,
            DataShape::Treebank => 5,
            DataShape::Deep => 3,
            DataShape::Wide => 2,
            DataShape::Adversarial => 2,
        };
        SketchTreeConfig {
            max_pattern_edges,
            synopsis: SynopsisConfig {
                s1: 25,
                s2: 5,
                virtual_streams: 59,
                topk: 32,
                seed,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        }
    }

    /// Ad-hoc `Count` pattern texts that hit this shape's label set.
    pub fn count_queries(self) -> &'static [&'static str] {
        match self {
            DataShape::Dblp => &[
                "article(author)",
                "article(author,year)",
                "inproceedings(author,title)",
                "article(journal)",
            ],
            DataShape::Treebank => &["S(NP,VP)", "NP(DT,NN)", "VP(VBD,NP)", "PP(IN,NP)"],
            DataShape::Deep => &["seg0(seg1)", "seg1(seg2(seg3))", "seg4(seg5)", "seg7(seg0)"],
            DataShape::Wide => &["row(f01)", "row(f02,f03)", "f04(v)", "row(f05,f06)"],
            DataShape::Adversarial => &["sp(a)", "a(b)", "sp(a,a)", "adv(sp)"],
        }
    }

    /// `Expr` texts (sums/differences of counts) for this shape.
    pub fn expr_queries(self) -> &'static [&'static str] {
        match self {
            DataShape::Dblp => &[
                "COUNT_ord(article(author)) + COUNT_ord(inproceedings(author))",
                "COUNT_ord(article(year)) - COUNT_ord(article(journal))",
            ],
            DataShape::Treebank => &[
                "COUNT_ord(S(NP,VP)) + COUNT_ord(S(VP))",
                "COUNT_ord(NP(DT,NN)) - COUNT_ord(NP(PRP))",
            ],
            DataShape::Deep => &[
                "COUNT_ord(seg0(seg1)) + COUNT_ord(seg2(seg3))",
                "COUNT_ord(seg5(seg6)) + COUNT_ord(seg6(seg7))",
            ],
            DataShape::Wide => &[
                "COUNT_ord(row(f01)) + COUNT_ord(row(f02))",
                "COUNT_ord(f07(v)) + COUNT_ord(f08(v))",
            ],
            DataShape::Adversarial => &[
                "COUNT_ord(sp(a)) + COUNT_ord(a(b))",
                "COUNT_ord(adv(sp)) + COUNT_ord(sp(a,a))",
            ],
        }
    }

    /// Standing-query texts subscriber connections register (ordered
    /// mode).
    pub fn standing_queries(self) -> &'static [&'static str] {
        match self {
            DataShape::Dblp => &["article(author)", "inproceedings(author)"],
            DataShape::Treebank => &["S(NP,VP)", "NP(DT,NN)"],
            DataShape::Deep => &["seg0(seg1)", "seg3(seg4)"],
            DataShape::Wide => &["row(f01)", "row(f02)"],
            DataShape::Adversarial => &["sp(a)", "a(b)"],
        }
    }
}

/// The arrival process for the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Constant inter-arrival gap `1/rate`.
    Steady,
    /// Square wave with period [`BURST_PERIOD_SECS`]: the whole period's
    /// ops arrive at double rate in the first half, nothing in the
    /// second.  Mean rate matches `--rate`; the burst front is where
    /// queueing (and the p999) lives.
    Bursty,
}

/// Burst period, seconds (half on, half off).
pub const BURST_PERIOD_SECS: f64 = 2.0;

impl Arrival {
    /// Lowercase arrival name.
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Steady => "steady",
            Arrival::Bursty => "bursty",
        }
    }

    /// Parses [`Arrival::name`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "steady" => Some(Arrival::Steady),
            "bursty" => Some(Arrival::Bursty),
            _ => None,
        }
    }

    /// Scheduled start (seconds from run start) of op `i` at mean rate
    /// `rate` ops/s.  Monotone non-decreasing in `i`.
    pub fn schedule(self, i: u64, rate: f64) -> f64 {
        match self {
            Arrival::Steady => i as f64 / rate,
            Arrival::Bursty => {
                let per_period = (rate * BURST_PERIOD_SECS).max(1.0);
                let period = i as f64 / per_period;
                let offset = (i as f64) - period.floor() * per_period;
                // All of the period's ops land in its first half.
                period.floor() * BURST_PERIOD_SECS
                    + offset / per_period * (BURST_PERIOD_SECS / 2.0)
            }
        }
    }
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Tree generator + query set.
    pub shape: DataShape,
    /// Arrival process.
    pub arrival: Arrival,
}

impl Scenario {
    /// `<shape>-<arrival>`, e.g. `dblp-steady`.
    pub fn name(self) -> String {
        format!("{}-{}", self.shape.name(), self.arrival.name())
    }

    /// Parses a `<shape>-<arrival>` scenario name.
    pub fn parse(s: &str) -> Option<Self> {
        let (shape, arrival) = s.rsplit_once('-')?;
        Some(Scenario {
            shape: DataShape::parse(shape)?,
            arrival: Arrival::parse(arrival)?,
        })
    }

    /// The full matrix, shapes × arrivals.
    pub fn matrix() -> Vec<Scenario> {
        let mut out = Vec::new();
        for shape in DataShape::ALL {
            for arrival in [Arrival::Steady, Arrival::Bursty] {
                out.push(Scenario { shape, arrival });
            }
        }
        out
    }
}

/// Relative op-kind weights for the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `IngestTrees` batches.
    pub ingest: u32,
    /// Ad-hoc ordered `Count`.
    pub count: u32,
    /// Ad-hoc `Expr`.
    pub expr: u32,
    /// Subscribe/unsubscribe churn (standing-query registration cost).
    pub subscribe: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Mix { ingest: 30, count: 50, expr: 10, subscribe: 10 }
    }
}

/// One operation kind in the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `IngestTrees` batch.
    Ingest,
    /// Ordered `Count`.
    Count,
    /// `Expr`.
    Expr,
    /// Subscribe + unsubscribe round trip.
    Subscribe,
}

impl OpKind {
    /// All kinds, report order.
    pub const ALL: [OpKind; 4] =
        [OpKind::Ingest, OpKind::Count, OpKind::Expr, OpKind::Subscribe];

    /// Lowercase kind name (report keys, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Ingest => "ingest",
            OpKind::Count => "count",
            OpKind::Expr => "expr",
            OpKind::Subscribe => "subscribe",
        }
    }
}

impl Mix {
    /// Parses `ingest=30,count=50,expr=10,subscribe=10`; omitted kinds
    /// get weight 0; at least one weight must be positive and `ingest`
    /// and `count` must both be present in the mix (the report schema
    /// requires their blocks).
    pub fn parse(s: &str) -> Result<Mix, String> {
        let mut mix = Mix { ingest: 0, count: 0, expr: 0, subscribe: 0 };
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (kind, weight) = part
                .split_once('=')
                .ok_or_else(|| format!("bad mix component {part:?}, want kind=weight"))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("bad mix weight in {part:?}"))?;
            match kind.trim() {
                "ingest" => mix.ingest = weight,
                "count" => mix.count = weight,
                "expr" => mix.expr = weight,
                "subscribe" => mix.subscribe = weight,
                other => return Err(format!("unknown mix kind {other:?}")),
            }
        }
        if mix.ingest == 0 || mix.count == 0 {
            return Err("mix must give ingest and count positive weight".to_string());
        }
        Ok(mix)
    }

    /// Total weight.
    pub fn total(self) -> u32 {
        self.ingest + self.count + self.expr + self.subscribe
    }

    /// Deterministic kind for op index `i` under `seed`: hashes the
    /// index, reduces modulo the total weight.  Every worker computes
    /// the same kind for the same index, so the realized mix is exact to
    /// within rounding regardless of which thread claims which op.
    pub fn kind_for(self, seed: u64, i: u64) -> OpKind {
        let h = splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut r = (h % u64::from(self.total())) as u32;
        for (kind, w) in [
            (OpKind::Ingest, self.ingest),
            (OpKind::Count, self.count),
            (OpKind::Expr, self.expr),
            (OpKind::Subscribe, self.subscribe),
        ] {
            if r < w {
                return kind;
            }
            r -= w;
        }
        OpKind::Count
    }
}

/// SplitMix64 — the standard 64-bit finalizer; cheap, stateless, and
/// plenty uniform for workload selection.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pre-generated ingest batches and query texts for one scenario.
pub struct Workload {
    /// Label names, indexed by the `Label` ids inside `batches` (the
    /// `IngestTrees` batch-local table).
    pub labels: Vec<String>,
    /// Ingest batches, cycled through by ingest ops.
    pub batches: Vec<Vec<Tree>>,
    /// Total trees across `batches`.
    pub trees_total: usize,
}

impl Workload {
    /// Generates `n_batches` batches of `batch` trees for `shape`.
    /// Deterministic per seed.
    pub fn prepare(shape: DataShape, seed: u64, batch: usize, n_batches: usize) -> Workload {
        let mut labels = LabelTable::new();
        let n = batch * n_batches;
        let trees: Vec<Tree> = match shape {
            DataShape::Dblp => {
                // A modest author pool keeps per-batch label tables (and
                // frames) small; shape statistics are unaffected.
                let gen = DblpGen::new(seed, &mut labels, 400);
                gen.take(n).collect()
            }
            DataShape::Treebank => {
                let gen = TreebankGen::new(seed, &mut labels);
                gen.take(n).collect()
            }
            DataShape::Deep => {
                let gen = SynthGen::new(SynthShape::Deep, seed, &mut labels);
                gen.take(n).collect()
            }
            DataShape::Wide => {
                let gen = SynthGen::new(SynthShape::Wide, seed, &mut labels);
                gen.take(n).collect()
            }
            DataShape::Adversarial => {
                let gen = SynthGen::new(SynthShape::Adversarial, seed, &mut labels);
                gen.take(n).collect()
            }
        };
        let trees_total = trees.len();
        let mut batches = Vec::with_capacity(n_batches);
        let mut it = trees.into_iter();
        for _ in 0..n_batches {
            batches.push(it.by_ref().take(batch).collect());
        }
        let labels = (0..labels.len())
            .map(|i| labels.name(Label(i as u32)).to_string())
            .collect();
        Workload { labels, batches, trees_total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_roundtrip() {
        for s in Scenario::matrix() {
            assert_eq!(Scenario::parse(&s.name()), Some(s), "{}", s.name());
        }
        assert_eq!(Scenario::matrix().len(), 10);
        assert!(Scenario::parse("dblp").is_none());
        assert!(Scenario::parse("nope-steady").is_none());
    }

    #[test]
    fn mix_parses_and_rejects() {
        let m = Mix::parse("ingest=30,count=50,expr=10,subscribe=10").unwrap();
        assert_eq!(m, Mix::default());
        assert_eq!(Mix::parse("ingest=1,count=1").unwrap().total(), 2);
        assert!(Mix::parse("count=5").is_err(), "no ingest weight");
        assert!(Mix::parse("ingest=5,count=0").is_err(), "zero count weight");
        assert!(Mix::parse("ingest=5,count=5,bogus=1").is_err());
        assert!(Mix::parse("ingest=x,count=5").is_err());
    }

    #[test]
    fn mix_kind_frequencies_track_weights() {
        let mix = Mix::default();
        let mut counts = [0u64; 4];
        let n = 100_000u64;
        for i in 0..n {
            let k = mix.kind_for(7, i);
            counts[OpKind::ALL.iter().position(|&x| x == k).unwrap()] += 1;
        }
        for (idx, want) in [(0usize, 0.30f64), (1, 0.50), (2, 0.10), (3, 0.10)] {
            let got = counts[idx] as f64 / n as f64;
            assert!(
                (got - want).abs() < 0.02,
                "{}: got {got}, want {want}",
                OpKind::ALL[idx].name()
            );
        }
        // Deterministic: same seed, same kinds.
        assert_eq!(mix.kind_for(7, 1234), mix.kind_for(7, 1234));
    }

    #[test]
    fn schedules_are_monotone_and_rate_matching() {
        for arrival in [Arrival::Steady, Arrival::Bursty] {
            let rate = 100.0;
            let mut last = -1.0;
            for i in 0..1000u64 {
                let t = arrival.schedule(i, rate);
                assert!(t >= last, "{arrival:?} op {i}: {t} < {last}");
                last = t;
            }
            // 1000 ops at 100/s should span ~10s for both processes.
            let span = arrival.schedule(999, rate);
            assert!((span - 10.0).abs() < 1.1, "{arrival:?} span {span}");
        }
    }

    #[test]
    fn bursty_front_loads_each_period() {
        // At 100 ops/s with a 2 s period, ops 0..199 belong to period 0
        // and must all be scheduled in its first half ([0, 1)).
        let a = Arrival::Bursty;
        for i in 0..200u64 {
            let t = a.schedule(i, 100.0);
            assert!(t < 1.0, "op {i} at {t}");
        }
        assert!(a.schedule(200, 100.0) >= 2.0);
    }

    #[test]
    fn workloads_generate_for_every_shape() {
        for shape in DataShape::ALL {
            let w = Workload::prepare(shape, 5, 4, 3);
            assert_eq!(w.batches.len(), 3, "{}", shape.name());
            assert_eq!(w.trees_total, 12);
            assert!(!w.labels.is_empty());
            // Every tree's labels must index into the label table.
            for b in &w.batches {
                assert_eq!(b.len(), 4);
                for t in b {
                    for id in t.preorder() {
                        assert!((t.label(id).0 as usize) < w.labels.len());
                    }
                }
            }
        }
    }

    #[test]
    fn query_texts_use_generated_labels() {
        // Every label mentioned in a query must exist in the shape's
        // label table, otherwise the server would answer with an error
        // rather than an estimate.
        for shape in DataShape::ALL {
            let w = Workload::prepare(shape, 5, 4, 2);
            let known: std::collections::HashSet<&str> =
                w.labels.iter().map(String::as_str).collect();
            let mut texts: Vec<&str> = shape.count_queries().to_vec();
            texts.extend(shape.standing_queries());
            for q in texts {
                for name in q.split(['(', ')', ',']).filter(|s| !s.is_empty()) {
                    assert!(
                        known.contains(name),
                        "{}: query {q:?} mentions unknown label {name:?}",
                        shape.name()
                    );
                }
            }
        }
    }
}
