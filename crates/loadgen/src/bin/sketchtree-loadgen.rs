//! Standalone entry point; `sketchtree loadgen` wraps the same
//! [`sketchtree_loadgen::run_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    match sketchtree_loadgen::run_cli(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sketchtree-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
