//! Builds the `BENCH_loadgen_<scenario>.json` document.
//!
//! The shape is a contract: [`crate::schema::validate`] enforces it, the
//! `loadgen-smoke` gate in scripts/check.sh re-checks every fresh run,
//! and docs/benchmarks.md documents each field.  Keys are emitted in a
//! fixed order (insertion-ordered [`Json`] objects) so committed reports
//! diff cleanly across PRs.

use crate::driver::RunConfig;
use crate::hist::LatencyHist;
use crate::json::Json;
use crate::scenario::OpKind;
use crate::schema;
use std::time::Duration;

/// One row of the closed-loop throughput-vs-batch-size sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Trees per ingest request.
    pub batch: usize,
    /// Sustained ingest throughput at this batch size.
    pub trees_per_sec: f64,
    /// In-loop p99 of one ingest round-trip, µs.
    pub p99_us: u64,
    /// Requests completed inside the sweep window.
    pub batches: u64,
}

/// Everything [`build`] needs from a finished run.
pub struct BuildInput<'a> {
    /// The run's configuration (echoed into `config`).
    pub cfg: &'a RunConfig,
    /// Wall-clock time of the main window including backlog drain.
    pub elapsed: Duration,
    /// Latency histograms indexed like [`OpKind::ALL`].
    pub op_hists: &'a [LatencyHist],
    /// Completed-op counts indexed like [`OpKind::ALL`].
    pub op_counts: &'a [u64],
    /// Error counts indexed like [`OpKind::ALL`].
    pub op_errors: &'a [u64],
    /// Actual-start minus scheduled-start, driver health.
    pub sched_lag: &'a LatencyHist,
    /// Trees acknowledged across all ingest ops.
    pub trees: u64,
    /// Pattern instances acknowledged across all ingest ops.
    pub patterns: u64,
    /// Ingest-ack-to-push lag samples.
    pub push_lag: &'a LatencyHist,
    /// Pushed updates received across subscribers.
    pub updates: u64,
    /// Highest epoch observed in any update.
    pub max_epoch: u64,
    /// Whether every subscription saw strictly increasing epochs.
    pub monotone: bool,
    /// Ops scheduled inside the window but never executed (hard stop).
    pub abandoned: u64,
    /// Closed-loop sweep results, possibly empty.
    pub sweep: &'a [SweepRow],
    /// Server-side counters, when reachable.
    pub server_excerpt: Option<Json>,
}

/// File name a scenario's report is committed under, relative to the
/// repo root: `BENCH_loadgen_<scenario>.json`.
pub fn bench_path(scenario_name: &str) -> String {
    format!("BENCH_loadgen_{scenario_name}.json")
}

/// Renders a latency histogram as the canonical percentile block.
///
/// A histogram with no samples has no latency distribution: every field
/// is emitted as `null` (the keys stay present — the schema requires
/// them) instead of a fabricated 0 µs that would read as "instant".
fn latency_block(h: &LatencyHist) -> Json {
    let quantile = |q: f64| h.quantile(q).map_or(Json::Null, |v| Json::Num(v as f64));
    let mut b = Json::obj();
    b.set("p50", quantile(0.50));
    b.set("p90", quantile(0.90));
    b.set("p99", quantile(0.99));
    b.set("p999", quantile(0.999));
    if h.count() == 0 {
        b.set("max", Json::Null);
        b.set("mean", Json::Null);
    } else {
        b.set("max", Json::Num(h.max() as f64));
        b.set("mean", Json::Num(h.mean()));
    }
    b
}

/// Assembles the schema-valid report document.
pub fn build(input: BuildInput<'_>) -> Json {
    let cfg = input.cfg;
    let elapsed_secs = input.elapsed.as_secs_f64().max(1e-9);

    let mut report = Json::obj();
    report.set("schema", Json::Str(schema::SCHEMA_NAME.into()));
    report.set("schema_version", Json::Num(schema::SCHEMA_VERSION));
    report.set("scenario", Json::Str(cfg.scenario.name()));
    report.set("dataset", Json::Str(cfg.scenario.shape.name().into()));
    report.set("arrival", Json::Str(cfg.scenario.arrival.name().into()));
    report.set("elapsed_secs", Json::Num(elapsed_secs));

    let mut config = Json::obj();
    config.set("duration_secs", Json::Num(cfg.duration.as_secs_f64()));
    config.set("target_rate", Json::Num(cfg.rate));
    config.set("threads", Json::Num(cfg.threads as f64));
    config.set("batch", Json::Num(cfg.batch as f64));
    config.set("subscribers", Json::Num(cfg.subscribers as f64));
    config.set("seed", Json::Num(cfg.seed as f64));
    // Durability setting of the spawned server: absent means no WAL, so
    // a WAL run and its baseline never diff empty in `config`.
    if cfg.wal_path.is_some() {
        config.set("wal_fsync_every", Json::Num(f64::from(cfg.wal_fsync_every)));
    }
    config.set(
        "mix",
        Json::Str(format!(
            "ingest={},count={},expr={},subscribe={}",
            cfg.mix.ingest, cfg.mix.count, cfg.mix.expr, cfg.mix.subscribe
        )),
    );
    report.set("config", config);

    let mut ops = Json::obj();
    for (i, kind) in OpKind::ALL.iter().enumerate() {
        let mut block = Json::obj();
        let count = input.op_counts.get(i).copied().unwrap_or(0);
        block.set("count", Json::Num(count as f64));
        block.set("errors", Json::Num(input.op_errors.get(i).copied().unwrap_or(0) as f64));
        block.set("throughput_per_sec", Json::Num(count as f64 / elapsed_secs));
        let empty = LatencyHist::new();
        block.set("latency_us", latency_block(input.op_hists.get(i).unwrap_or(&empty)));
        ops.set(kind.name(), block);
    }
    report.set("ops", ops);

    report.set("sched_lag_us", latency_block(input.sched_lag));
    report.set("completed_all_scheduled", Json::Bool(input.abandoned == 0));
    report.set("ops_abandoned", Json::Num(input.abandoned as f64));

    let mut push = Json::obj();
    push.set("updates", Json::Num(input.updates as f64));
    push.set("max_epoch", Json::Num(input.max_epoch as f64));
    push.set("epochs_monotone", Json::Bool(input.monotone));
    push.set("lag_samples", Json::Num(input.push_lag.count() as f64));
    push.set("lag_us", latency_block(input.push_lag));
    report.set("push", push);

    let mut ingest = Json::obj();
    ingest.set("trees", Json::Num(input.trees as f64));
    ingest.set("patterns", Json::Num(input.patterns as f64));
    ingest.set("trees_per_sec", Json::Num(input.trees as f64 / elapsed_secs));
    report.set("ingest", ingest);

    let rows = input
        .sweep
        .iter()
        .map(|r| {
            let mut row = Json::obj();
            row.set("batch", Json::Num(r.batch as f64));
            row.set("trees_per_sec", Json::Num(r.trees_per_sec));
            row.set("p99_us", Json::Num(r.p99_us as f64));
            row.set("batches", Json::Num(r.batches as f64));
            row
        })
        .collect();
    report.set("batch_sweep", Json::Arr(rows));

    if let Some(server) = input.server_excerpt {
        report.set("server", server);
    }
    report
}

/// A schema-complete report built through [`build`] itself, so schema
/// tests break the moment the emitter and validator drift apart.
#[cfg(test)]
pub fn example_for_tests() -> Json {
    use crate::scenario::Scenario;
    let scenario = Scenario::parse("dblp-steady").expect("known scenario");
    let cfg = RunConfig::smoke(scenario);
    let mut hist = LatencyHist::new();
    for v in [120u64, 340, 900, 4_200, 15_000] {
        hist.record(v);
    }
    let hists: Vec<LatencyHist> = OpKind::ALL.iter().map(|_| hist.clone()).collect();
    let sweep = [SweepRow { batch: 16, trees_per_sec: 1234.5, p99_us: 880, batches: 42 }];
    build(BuildInput {
        cfg: &cfg,
        elapsed: Duration::from_millis(1500),
        op_hists: &hists,
        op_counts: &[30, 50, 10, 10],
        op_errors: &[0, 0, 0, 0],
        sched_lag: &hist,
        trees: 240,
        patterns: 2_400,
        push_lag: &hist,
        updates: 12,
        max_epoch: 30,
        monotone: true,
        abandoned: 0,
        sweep: &sweep,
        server_excerpt: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_is_schema_valid_and_ordered() {
        let r = example_for_tests();
        assert!(crate::schema::validate(&r).is_ok());
        // The first keys come out in contract order for clean diffs.
        let text = r.render_pretty();
        let schema_pos = text.find("\"schema\"").expect("schema key");
        let scenario_pos = text.find("\"scenario\"").expect("scenario key");
        let ops_pos = text.find("\"ops\"").expect("ops key");
        assert!(schema_pos < scenario_pos && scenario_pos < ops_pos);
    }

    /// A run where some op never executed (zero samples) must emit `null`
    /// percentiles — present for the schema, honest about the absence of
    /// a distribution — and still validate.
    #[test]
    fn zero_sample_histogram_emits_null_and_validates() {
        let scenario = crate::scenario::Scenario::parse("dblp-steady").expect("known scenario");
        let cfg = RunConfig::smoke(scenario);
        let empty = LatencyHist::new();
        let hists: Vec<LatencyHist> = OpKind::ALL.iter().map(|_| empty.clone()).collect();
        let r = build(BuildInput {
            cfg: &cfg,
            elapsed: Duration::from_millis(100),
            op_hists: &hists,
            op_counts: &[0, 0, 0, 0],
            op_errors: &[0, 0, 0, 0],
            sched_lag: &empty,
            trees: 0,
            patterns: 0,
            push_lag: &empty,
            updates: 0,
            max_epoch: 0,
            monotone: true,
            abandoned: 0,
            sweep: &[],
            server_excerpt: None,
        });
        for field in ["p50", "p99", "p999", "max", "mean"] {
            assert!(
                matches!(r.get_path(&["ops", "ingest", "latency_us", field]), Some(Json::Null)),
                "{field} should be null on an empty histogram"
            );
        }
        assert!(crate::schema::validate(&r).is_ok(), "{:?}", crate::schema::validate(&r));
        // The rendered document survives a parse round-trip with nulls.
        let parsed = Json::parse(&r.render_pretty()).expect("parses");
        assert!(crate::schema::validate(&parsed).is_ok());
    }

    /// One sample: every percentile is that sample, numeric, and the
    /// report validates.
    #[test]
    fn one_sample_histogram_reports_the_sample_and_validates() {
        let scenario = crate::scenario::Scenario::parse("dblp-steady").expect("known scenario");
        let cfg = RunConfig::smoke(scenario);
        let mut h = LatencyHist::new();
        h.record(310);
        let hists: Vec<LatencyHist> = OpKind::ALL.iter().map(|_| h.clone()).collect();
        let r = build(BuildInput {
            cfg: &cfg,
            elapsed: Duration::from_millis(100),
            op_hists: &hists,
            op_counts: &[1, 1, 1, 1],
            op_errors: &[0, 0, 0, 0],
            sched_lag: &h,
            trees: 1,
            patterns: 10,
            push_lag: &h,
            updates: 1,
            max_epoch: 1,
            monotone: true,
            abandoned: 0,
            sweep: &[],
            server_excerpt: None,
        });
        let p50 = r.get_path(&["ops", "ingest", "latency_us", "p50"]).and_then(Json::as_f64);
        let p999 = r.get_path(&["ops", "ingest", "latency_us", "p999"]).and_then(Json::as_f64);
        assert_eq!(p50, p999, "single sample defines every quantile");
        assert!(p999.expect("numeric") > 0.0);
        assert!(crate::schema::validate(&r).is_ok());
    }

    #[test]
    fn bench_path_matches_contract() {
        assert_eq!(bench_path("dblp-steady"), "BENCH_loadgen_dblp-steady.json");
    }

    #[test]
    fn throughput_uses_elapsed_not_configured_duration() {
        let r = example_for_tests();
        let count = r.get_path(&["ops", "ingest", "count"]).and_then(Json::as_f64).expect("count");
        let thr = r
            .get_path(&["ops", "ingest", "throughput_per_sec"])
            .and_then(Json::as_f64)
            .expect("throughput");
        assert!((thr - count / 1.5).abs() < 1e-6);
    }
}
