//! Minimal JSON tree: build, render, parse.
//!
//! The workspace is offline (no serde); the snapshot and metrics layers
//! already hand-roll their encodings, and the BENCH report follows suit.
//! Objects keep **insertion order** when rendering so reports diff
//! cleanly PR-over-PR, and lookup is linear — report objects have tens
//! of keys, not thousands.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered via [`fmt_f64`].
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; no-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        if let Json::Obj(entries) = self {
            if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                e.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
        self
    }

    /// Member lookup: `Some` when `self` is an object holding `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Path lookup through nested objects.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation — the on-disk BENCH format, so
    /// reports stay readable in review diffs.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push_str(colon);
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, no trailing input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Integral floats render without a fraction (`12`, not `12.0`),
/// everything else through Rust's shortest round-trip `{}` formatting.
/// Non-finite values have no JSON spelling and render as `null`.
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        let mut s = String::new();
        let _ = write!(s, "{}", n as i64);
        s
    } else {
        format!("{n}")
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates are not paired (the reports never
                            // emit them); map to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar: the input is a &str, so
                    // slicing at char boundaries is safe via char_indices.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("x".into()))
            .set("n", Json::Num(42.0))
            .set("pi", Json::Num(3.25))
            .set("ok", Json::Bool(true))
            .set("none", Json::Null)
            .set(
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two, \"quoted\"\n".into())]),
            );
        let mut inner = Json::obj();
        inner.set("p999", Json::Num(12345.0));
        doc.set("latency", inner);

        for text in [doc.render(), doc.render_pretty()] {
            let parsed = Json::parse(&text).expect("parses");
            assert_eq!(parsed, doc, "through {text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_standard_documents() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "A"}}"#).unwrap();
        assert_eq!(v.get_path(&["b", "c"]).and_then(Json::as_str), Some("A"));
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)]))
        );
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(fmt_f64(42.0), "42");
        assert_eq!(fmt_f64(-7.0), "-7");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Json::obj();
        o.set("k", Json::Num(1.0)).set("k", Json::Num(2.0));
        assert_eq!(o.get("k").and_then(Json::as_f64), Some(2.0));
        if let Json::Obj(e) = &o {
            assert_eq!(e.len(), 1);
        }
    }
}
