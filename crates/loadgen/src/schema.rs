//! Schema validation for `BENCH_loadgen_<scenario>.json` reports.
//!
//! The trajectory only works if every PR emits the *same shape*: a report
//! missing `p999` because a refactor dropped a field would silently break
//! cross-PR diffs.  [`validate`] checks the full contract documented in
//! docs/benchmarks.md and returns **every** violation, not just the
//! first, so a malformed report is diagnosable in one pass.  The
//! `loadgen-smoke` gate in scripts/check.sh runs this over a fresh run's
//! output.

use crate::json::Json;

/// `schema` field every report must carry.
pub const SCHEMA_NAME: &str = "sketchtree-loadgen-report";
/// Current `schema_version`.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Percentile fields every latency block must provide, in µs.
pub const PERCENTILE_FIELDS: &[&str] = &["p50", "p90", "p99", "p999", "max", "mean"];

/// Fields every per-operation block must provide besides `latency_us`.
const OP_FIELDS: &[&str] = &["count", "errors", "throughput_per_sec"];

/// Validates a parsed report; `Err` carries one message per violation.
pub fn validate(report: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    fn need_num(errs: &mut Vec<String>, report: &Json, path: &[&str]) {
        if report.get_path(path).and_then(Json::as_f64).is_none() {
            errs.push(format!("missing or non-numeric field: {}", path.join(".")));
        }
    }

    match report.get("schema").and_then(Json::as_str) {
        Some(SCHEMA_NAME) => {}
        Some(other) => errs.push(format!("schema is {other:?}, want {SCHEMA_NAME:?}")),
        None => errs.push("missing field: schema".to_string()),
    }
    match report.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => errs.push(format!("schema_version is {v}, want {SCHEMA_VERSION}")),
        None => errs.push("missing field: schema_version".to_string()),
    }
    for key in ["scenario", "dataset", "arrival"] {
        match report.get(key).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => errs.push(format!("missing or empty field: {key}")),
        }
    }
    need_num(&mut errs, report, &["elapsed_secs"]);
    for key in ["duration_secs", "target_rate", "threads", "batch", "subscribers", "seed"] {
        need_num(&mut errs, report, &["config", key]);
    }

    // Per-operation blocks: at least ingest and count must be present
    // (every scenario mixes them in); whatever blocks exist must be
    // complete.
    match report.get("ops") {
        Some(Json::Obj(entries)) => {
            for required in ["ingest", "count"] {
                if !entries.iter().any(|(k, _)| k == required) {
                    errs.push(format!("ops.{required} block missing"));
                }
            }
            for (name, block) in entries {
                for field in OP_FIELDS {
                    if block.get(field).and_then(Json::as_f64).is_none() {
                        errs.push(format!("ops.{name}.{field} missing or non-numeric"));
                    }
                }
                check_latency_block(&mut errs, &format!("ops.{name}"), block.get("latency_us"));
            }
        }
        _ => errs.push("ops object missing".to_string()),
    }

    // Push-lag block for subscribers.
    match report.get("push") {
        Some(push) => {
            for field in ["updates", "max_epoch"] {
                if push.get(field).and_then(Json::as_f64).is_none() {
                    errs.push(format!("push.{field} missing or non-numeric"));
                }
            }
            if push.get("epochs_monotone").and_then(Json::as_bool).is_none() {
                errs.push("push.epochs_monotone missing or non-boolean".to_string());
            }
            check_latency_block(&mut errs, "push", push.get("lag_us"));
        }
        None => errs.push("push object missing".to_string()),
    }

    // Ingest volume + the throughput-vs-batch-size table.
    for key in ["trees", "patterns", "trees_per_sec"] {
        need_num(&mut errs, report, &["ingest", key]);
    }
    match report.get("batch_sweep") {
        Some(Json::Arr(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                for field in ["batch", "trees_per_sec", "p99_us"] {
                    if row.get(field).and_then(Json::as_f64).is_none() {
                        errs.push(format!("batch_sweep[{i}].{field} missing or non-numeric"));
                    }
                }
            }
        }
        Some(_) => errs.push("batch_sweep must be an array".to_string()),
        None => {} // optional: sweeps can be disabled
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Requires a complete latency/lag block at `ctx`.
///
/// Every percentile key must be *present*; its value may be numeric or
/// `null` (a histogram with no samples has no latency distribution, and
/// the emitter says so explicitly rather than fabricating 0 µs).
fn check_latency_block(errs: &mut Vec<String>, ctx: &str, block: Option<&Json>) {
    let Some(block) = block else {
        errs.push(format!("{ctx}: latency block missing"));
        return;
    };
    for field in PERCENTILE_FIELDS {
        match block.get(field) {
            None => errs.push(format!("{ctx}: percentile field {field} missing")),
            Some(Json::Null) => {}
            Some(v) if v.as_f64().is_some() => {}
            Some(_) => {
                errs.push(format!("{ctx}: percentile field {field} must be numeric or null"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;

    /// A minimal schema-complete report, built through the same code the
    /// driver uses, so this test breaks when the emitter drifts.
    fn complete_report() -> Json {
        report::example_for_tests()
    }

    #[test]
    fn schema_accepts_a_complete_report() {
        let r = complete_report();
        if let Err(errs) = validate(&r) {
            panic!("complete report rejected: {errs:?}");
        }
    }

    #[test]
    fn schema_survives_a_render_parse_roundtrip() {
        let r = complete_report();
        let parsed = Json::parse(&r.render_pretty()).expect("parses");
        assert!(validate(&parsed).is_ok());
    }

    #[test]
    fn missing_percentile_field_is_rejected() {
        let mut r = complete_report();
        // Drop p999 from ops.ingest.latency_us.
        if let Some(Json::Obj(ops)) = r_get_mut(&mut r, "ops") {
            if let Some((_, block)) = ops.iter_mut().find(|(k, _)| k == "ingest") {
                if let Some(Json::Obj(lat)) = r_get_mut(block, "latency_us") {
                    lat.retain(|(k, _)| k != "p999");
                }
            }
        }
        let errs = validate(&r).expect_err("p999-less report must fail");
        assert!(
            errs.iter().any(|e| e.contains("p999")),
            "no p999 violation in {errs:?}"
        );
    }

    #[test]
    fn missing_ops_block_and_bad_schema_are_rejected() {
        let mut r = complete_report();
        r.set("schema", Json::Str("something-else".into()));
        if let Json::Obj(entries) = &mut r {
            entries.retain(|(k, _)| k != "ops");
        }
        let errs = validate(&r).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("schema")));
        assert!(errs.iter().any(|e| e.contains("ops")));
    }

    #[test]
    fn missing_push_block_is_rejected() {
        let mut r = complete_report();
        if let Json::Obj(entries) = &mut r {
            entries.retain(|(k, _)| k != "push");
        }
        let errs = validate(&r).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("push")));
    }

    /// Mutable member lookup for test surgery.
    fn r_get_mut<'a>(v: &'a mut Json, key: &str) -> Option<&'a mut Json> {
        match v {
            Json::Obj(entries) => {
                entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}
