//! Arena-allocated ordered labeled trees.
//!
//! A [`Tree`] owns all of its nodes in one `Vec` arena; a node is addressed
//! by a [`NodeId`] (an index into the arena).  Child order is significant —
//! SketchTree's `COUNT_ord` semantics depend on it — and is preserved by
//! every operation, including [`Tree::project`], which is how EnumTree turns
//! an edge subset of a data tree back into a standalone pattern tree.

use crate::label::Label;
use std::fmt;

/// Index of a node within its [`Tree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An ordered labeled tree.
///
/// ```
/// use sketchtree_tree::{Tree, LabelTable};
/// let mut labels = LabelTable::new();
/// let (a, b, c) = (labels.intern("A"), labels.intern("B"), labels.intern("C"));
/// let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.label(t.root()), a);
/// ```
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// A single-node tree.
    pub fn leaf(label: Label) -> Self {
        Self {
            nodes: vec![Node {
                label,
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
        }
    }

    /// A tree with the given root label and child subtrees, in order.
    pub fn node(label: Label, children: Vec<Tree>) -> Self {
        let mut tree = Self::leaf(label);
        for child in children {
            tree.graft(tree.root, &child, child.root());
        }
        tree
    }

    /// Appends a copy of `src`'s subtree rooted at `src_node` as the last
    /// child of `parent`.  Returns the id of the copied subtree root.
    pub fn graft(&mut self, parent: NodeId, src: &Tree, src_node: NodeId) -> NodeId {
        let new_id = self.push_node(src.label(src_node), Some(parent));
        // Copy children depth-first, preserving order.
        let mut stack: Vec<(NodeId, NodeId)> = src
            .children(src_node)
            .iter()
            .rev()
            .map(|&c| (c, new_id))
            .collect();
        while let Some((src_child, dst_parent)) = stack.pop() {
            let dst_child = self.push_node(src.label(src_child), Some(dst_parent));
            for &gc in src.children(src_child).iter().rev() {
                stack.push((gc, dst_child));
            }
        }
        new_id
    }

    /// Appends a new leaf with the given label as the last child of
    /// `parent`, returning its id.
    pub fn graft_leaf(&mut self, parent: NodeId, label: Label) -> NodeId {
        self.push_node(label, Some(parent))
    }

    fn push_node(&mut self, label: Label, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("tree too large"));
        self.nodes.push(Node {
            label,
            parent,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        }
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Trees always have at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`len() - 1`).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The label of a node.
    #[inline]
    pub fn label(&self, id: NodeId) -> Label {
        self.nodes[id.index()].label
    }

    /// The parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The ordered children of a node.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// True if the node has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// Fanout (number of children) of a node.
    #[inline]
    pub fn fanout(&self, id: NodeId) -> usize {
        self.nodes[id.index()].children.len()
    }

    /// All node ids in preorder (root first, children left to right).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All node ids in postorder (children left to right, then parent).
    pub fn postorder(&self) -> Vec<NodeId> {
        // Reverse of a right-to-left preorder.
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.children(id) {
                stack.push(c);
            }
        }
        out.reverse();
        out
    }

    /// Height: number of nodes on the longest root-to-leaf path (1 for a
    /// single node).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut max = 1;
        for id in self.preorder() {
            depth[id.index()] = match self.parent(id) {
                None => 1,
                Some(p) => depth[p.index()] + 1,
            };
            max = max.max(depth[id.index()]);
        }
        max
    }

    /// Maximum fanout over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).max().unwrap_or(0)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Builds a standalone tree from a connected edge subset of this tree.
    ///
    /// `edges` are `(parent, child)` pairs of node ids of `self`; they must
    /// form a tree rooted at `root` (every child reachable from `root`).
    /// Relative sibling order of the data tree is preserved — this is the
    /// operation that turns an EnumTree edge set (paper Algorithm 3) into a
    /// pattern tree.  An empty edge set projects the single node `root`.
    ///
    /// # Panics
    /// Panics if the edges do not form a tree rooted at `root`.
    pub fn project(&self, root: NodeId, edges: &[(NodeId, NodeId)]) -> Tree {
        // Group selected children by parent, then order each group by the
        // parent's child order in self.
        let mut chosen: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for &(p, c) in edges {
            debug_assert_eq!(self.parent(c), Some(p), "edge ({p:?},{c:?}) not in tree");
            chosen.entry(p).or_default().push(c);
        }
        for (p, kids) in chosen.iter_mut() {
            let order: std::collections::HashMap<NodeId, usize> = self
                .children(*p)
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i))
                .collect();
            kids.sort_by_key(|c| order[c]);
        }
        let mut out = Tree::leaf(self.label(root));
        let mut stack: Vec<(NodeId, NodeId)> = vec![(root, out.root())];
        let mut copied = 1usize;
        while let Some((src, dst)) = stack.pop() {
            if let Some(kids) = chosen.get(&src) {
                // Push in reverse so the stack pops them left to right.
                let mut to_add: Vec<(NodeId, NodeId)> = Vec::with_capacity(kids.len());
                for &k in kids {
                    let new_dst = out.push_node(self.label(k), Some(dst));
                    copied += 1;
                    to_add.push((k, new_dst));
                }
                stack.extend(to_add);
            }
        }
        assert_eq!(
            copied,
            edges.len() + 1,
            "edge set is not a tree rooted at the given root"
        );
        out
    }

    /// Renders as an s-expression with label ids, e.g. `#0(#1,#2(#3))`.
    pub fn to_sexpr(&self) -> String {
        fn rec(t: &Tree, id: NodeId, out: &mut String) {
            out.push_str(&t.label(id).to_string());
            if !t.is_leaf(id) {
                out.push('(');
                for (i, &c) in t.children(id).iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    rec(t, c, out);
                }
                out.push(')');
            }
        }
        let mut s = String::new();
        rec(self, self.root, &mut s);
        s
    }

    /// Renders as an s-expression with label names resolved through a table.
    pub fn to_sexpr_named(&self, labels: &crate::label::LabelTable) -> String {
        fn rec(t: &Tree, id: NodeId, labels: &crate::label::LabelTable, out: &mut String) {
            out.push_str(labels.name(t.label(id)));
            if !t.is_leaf(id) {
                out.push('(');
                for (i, &c) in t.children(id).iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    rec(t, c, labels, out);
                }
                out.push(')');
            }
        }
        let mut s = String::new();
        rec(self, self.root, labels, &mut s);
        s
    }
}

impl PartialEq for Tree {
    /// Structural equality: same shape, same labels, same child order —
    /// independent of arena layout.
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut stack = vec![(self.root, other.root())];
        while let Some((a, b)) = stack.pop() {
            if self.label(a) != other.label(b)
                || self.children(a).len() != other.children(b).len()
            {
                return false;
            }
            stack.extend(self.children(a).iter().copied().zip(other.children(b).iter().copied()));
        }
        true
    }
}

impl Eq for Tree {}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sexpr())
    }
}

/// A stack-based builder mirroring SAX events: `open` on start-element,
/// `close` on end-element.
///
/// ```
/// use sketchtree_tree::{TreeBuilder, LabelTable};
/// let mut labels = LabelTable::new();
/// let mut b = TreeBuilder::new();
/// b.open(labels.intern("A"));
/// b.open(labels.intern("B"));
/// b.close();
/// b.close();
/// let t = b.finish().unwrap();
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    tree: Option<Tree>,
    stack: Vec<NodeId>,
}

/// Errors from [`TreeBuilder::finish`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `close` called with no open element.
    CloseWithoutOpen,
    /// `open` called after the root element was already closed.
    SecondRoot,
    /// `finish` called with unclosed elements remaining.
    Unclosed(usize),
    /// `finish` called before any element was opened.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::CloseWithoutOpen => write!(f, "close() without a matching open()"),
            BuildError::SecondRoot => write!(f, "open() after the root was closed"),
            BuildError::Unclosed(n) => write!(f, "finish() with {n} unclosed element(s)"),
            BuildError::Empty => write!(f, "finish() on an empty builder"),
        }
    }
}

impl std::error::Error for BuildError {}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new element as a child of the current element (or as the
    /// root).
    pub fn open(&mut self, label: Label) -> Result<NodeId, BuildError> {
        match (&mut self.tree, self.stack.last().copied()) {
            (None, _) => {
                let t = Tree::leaf(label);
                let id = t.root();
                self.tree = Some(t);
                self.stack.push(id);
                Ok(id)
            }
            (Some(_), None) => Err(BuildError::SecondRoot),
            (Some(t), Some(parent)) => {
                let id = t.push_node(label, Some(parent));
                self.stack.push(id);
                Ok(id)
            }
        }
    }

    /// Closes the current element.
    pub fn close(&mut self) -> Result<(), BuildError> {
        self.stack.pop().map(|_| ()).ok_or(BuildError::CloseWithoutOpen)
    }

    /// True if the root has been opened and closed.
    pub fn is_complete(&self) -> bool {
        self.tree.is_some() && self.stack.is_empty()
    }

    /// Depth of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the build, returning the tree.
    pub fn finish(self) -> Result<Tree, BuildError> {
        match (self.tree, self.stack.len()) {
            (None, _) => Err(BuildError::Empty),
            (Some(_), n) if n > 0 => Err(BuildError::Unclosed(n)),
            (Some(t), _) => Ok(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    fn labels3() -> (LabelTable, Label, Label, Label) {
        let mut t = LabelTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let c = t.intern("C");
        (t, a, b, c)
    }

    #[test]
    fn leaf_basics() {
        let (_, a, _, _) = labels3();
        let t = Tree::leaf(a);
        assert_eq!(t.len(), 1);
        assert_eq!(t.edge_count(), 0);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn node_composition_preserves_order() {
        let (_, a, b, c) = labels3();
        let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label(kids[0]), b);
        assert_eq!(t.label(kids[1]), c);
        assert_eq!(t.to_sexpr(), "#0(#1,#2)");
    }

    #[test]
    fn deep_graft_copies_whole_subtree() {
        let (_, a, b, c) = labels3();
        let sub = Tree::node(b, vec![Tree::leaf(c), Tree::node(c, vec![Tree::leaf(b)])]);
        let t = Tree::node(a, vec![sub.clone()]);
        assert_eq!(t.len(), 1 + sub.len());
        assert_eq!(t.to_sexpr(), "#0(#1(#2,#2(#1)))");
    }

    #[test]
    fn traversal_orders() {
        let (_, a, b, c) = labels3();
        // A(B(C),C)
        let t = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)]), Tree::leaf(c)]);
        let pre: Vec<Label> = t.preorder().into_iter().map(|id| t.label(id)).collect();
        let post: Vec<Label> = t.postorder().into_iter().map(|id| t.label(id)).collect();
        assert_eq!(pre, vec![a, b, c, c]);
        assert_eq!(post, vec![c, b, c, a]);
    }

    #[test]
    fn stats() {
        let (_, a, b, c) = labels3();
        let t = Tree::node(
            a,
            vec![
                Tree::node(b, vec![Tree::leaf(c), Tree::leaf(c)]),
                Tree::leaf(b),
                Tree::leaf(c),
            ],
        );
        assert_eq!(t.depth(), 3);
        assert_eq!(t.max_fanout(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn structural_equality_ignores_arena_layout() {
        let (_, a, b, c) = labels3();
        let t1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        // Built via builder: different internal construction path.
        let mut bld = TreeBuilder::new();
        bld.open(a).unwrap();
        bld.open(b).unwrap();
        bld.close().unwrap();
        bld.open(c).unwrap();
        bld.close().unwrap();
        bld.close().unwrap();
        let t2 = bld.finish().unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn structural_inequality_on_order() {
        let (_, a, b, c) = labels3();
        let t1 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let t2 = Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn structural_inequality_on_shape() {
        let (_, a, b, c) = labels3();
        let t1 = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]);
        let t2 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn project_single_node() {
        let (_, a, b, _) = labels3();
        let t = Tree::node(a, vec![Tree::leaf(b)]);
        let p = t.project(t.root(), &[]);
        assert_eq!(p, Tree::leaf(a));
    }

    #[test]
    fn project_preserves_sibling_order() {
        let (_, a, b, c) = labels3();
        // A with children B, C, B. Select edges to children 0 and 2.
        let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c), Tree::leaf(b)]);
        let kids = t.children(t.root()).to_vec();
        let p = t.project(t.root(), &[(t.root(), kids[2]), (t.root(), kids[0])]);
        assert_eq!(p, Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b)]));
    }

    #[test]
    fn project_multi_level() {
        let (_, a, b, c) = labels3();
        // A(B(C,C),C) — take root->B, B->second C.
        let t = Tree::node(
            a,
            vec![Tree::node(b, vec![Tree::leaf(c), Tree::leaf(c)]), Tree::leaf(c)],
        );
        let bnode = t.children(t.root())[0];
        let c2 = t.children(bnode)[1];
        let p = t.project(t.root(), &[(t.root(), bnode), (bnode, c2)]);
        assert_eq!(p, Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]));
    }

    #[test]
    #[should_panic]
    fn project_disconnected_edges_panics() {
        let (_, a, b, c) = labels3();
        let t = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]);
        let bnode = t.children(t.root())[0];
        let cnode = t.children(bnode)[0];
        // Edge (b,c) without (a,b): not reachable from root.
        t.project(t.root(), &[(bnode, cnode)]);
    }

    #[test]
    fn builder_error_paths() {
        let (_, a, _, _) = labels3();
        let mut b = TreeBuilder::new();
        assert_eq!(b.close(), Err(BuildError::CloseWithoutOpen));
        assert!(b.open(a).is_ok());
        assert_eq!(b.open_depth(), 1);
        b.close().unwrap();
        assert!(b.is_complete());
        let mut b2 = TreeBuilder::new();
        b2.open(a).unwrap();
        b2.close().unwrap();
        assert_eq!(b2.open(a), Err(BuildError::SecondRoot));

        assert!(matches!(TreeBuilder::new().finish(), Err(BuildError::Empty)));
        let mut b3 = TreeBuilder::new();
        b3.open(a).unwrap();
        assert_eq!(b3.finish().err(), Some(BuildError::Unclosed(1)));
    }

    #[test]
    fn display_named() {
        let (tbl, a, b, _) = labels3();
        let t = Tree::node(a, vec![Tree::leaf(b)]);
        assert_eq!(t.to_sexpr_named(&tbl), "A(B)");
    }
}
