//! Extended Prüfer sequences (LPS/NPS) — paper Section 2.3.
//!
//! A Prüfer sequence is built by repeatedly deleting the leaf with the
//! smallest label and noting its parent, until one node remains.  Following
//! PRIX and the SketchTree paper, the "labels" driving deletion are 1-based
//! postorder numbers, and the tree is first *extended* by giving every
//! original leaf a dummy child so that the sequence retains the leaf labels
//! of the original tree.  The resulting pair of sequences —
//!
//! * **NPS** (Numbered Prüfer Sequence): postorder numbers of the noted
//!   parents, and
//! * **LPS** (Labeled Prüfer Sequence): their labels —
//!
//! together identify the original ordered labeled tree *uniquely*, which is
//! what lets SketchTree reduce tree-pattern counting to counting
//! one-dimensional values.
//!
//! ### Linear-time construction
//!
//! With postorder numbers as labels, "repeatedly delete the smallest leaf"
//! deletes nodes exactly in postorder: every descendant of a node has a
//! smaller number, so by the time the procedure reaches number `v`, node `v`
//! is a leaf; and every smaller number is deleted first.  Hence entry `i` of
//! the sequence is simply the parent of the node with postorder number `i`,
//! and the whole sequence falls out of one traversal.  [`PruferSeq::encode`]
//! implements this; [`PruferSeq::encode_reference`] implements the literal
//! delete-smallest-leaf procedure so tests can confirm the equivalence.

use crate::label::Label;
use crate::postorder::Postorder;
use crate::tree::{NodeId, Tree};
use std::fmt;

/// The (LPS, NPS) pair of an extended tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PruferSeq {
    /// Labeled Prüfer sequence.
    pub lps: Vec<Label>,
    /// Numbered Prüfer sequence (1-based extended-postorder numbers).
    pub nps: Vec<u32>,
}

/// Errors recognised by [`PruferSeq::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// LPS and NPS lengths differ.
    LengthMismatch,
    /// The sequences are empty (no tree, not even a single node, encodes to
    /// an empty sequence: a single node extends to two nodes and one entry).
    Empty,
    /// An NPS entry does not exceed its position (parents must have larger
    /// postorder numbers than their children).
    ParentNotGreater {
        /// 1-based position of the offending entry.
        position: u32,
    },
    /// An NPS entry exceeds the total (extended) node count.
    ParentOutOfRange {
        /// 1-based position of the offending entry.
        position: u32,
    },
    /// The same node number occurs with two different labels.
    InconsistentLabels {
        /// The node number whose labels conflict.
        node: u32,
    },
    /// The dummy-extension structure is violated: an original leaf without
    /// exactly one dummy child, or a dummy attached to an internal node.
    MalformedExtension {
        /// The node number at fault.
        node: u32,
    },
    /// The sequences are longer than the u32 numbering space allows
    /// (extended node counts are 1-based u32 postorder numbers).
    TooLong,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::LengthMismatch => write!(f, "LPS and NPS lengths differ"),
            DecodeError::Empty => write!(f, "empty Prüfer sequence"),
            DecodeError::ParentNotGreater { position } => {
                write!(f, "NPS[{position}] must exceed its position")
            }
            DecodeError::ParentOutOfRange { position } => {
                write!(f, "NPS[{position}] exceeds the node count")
            }
            DecodeError::InconsistentLabels { node } => {
                write!(f, "node {node} appears with conflicting labels")
            }
            DecodeError::MalformedExtension { node } => {
                write!(f, "node {node} violates the dummy-extension structure")
            }
            DecodeError::TooLong => {
                write!(f, "sequence length exceeds the u32 numbering space")
            }
        }
    }
}

/// Widening index conversion: `usize` is at least 32 bits on every target
/// this workspace supports, so a u32 postorder number always fits.
fn ix(n: u32) -> usize {
    // lint:allow(L2, reason = "u32 -> usize is widening on all supported targets")
    n as usize
}

impl std::error::Error for DecodeError {}

impl PruferSeq {
    /// Encodes a tree into its extended Prüfer sequence pair in O(n).
    pub fn encode(tree: &Tree) -> PruferSeq {
        // Extended postorder numbers: walking the original postorder and
        // inserting each leaf's dummy immediately before the leaf reproduces
        // the extended tree's postorder (the dummy is an only child).
        let order = tree.postorder();
        let n = tree.len();
        let mut extnum = vec![0u32; n];
        let mut dummy_num = vec![0u32; n]; // 0 = no dummy (internal node)
        let mut counter = 0u32;
        for &id in &order {
            if tree.is_leaf(id) {
                counter += 1;
                dummy_num[id.index()] = counter;
            }
            counter += 1;
            extnum[id.index()] = counter;
        }
        let m = ix(counter); // n + #leaves
        let mut lps: Vec<Label> = Vec::with_capacity(m - 1);
        let mut nps: Vec<u32> = Vec::with_capacity(m - 1);
        lps.resize(m - 1, Label(0));
        nps.resize(m - 1, 0);
        for &id in &order {
            // Entry for the dummy child of a leaf: parent is the leaf itself.
            let d = dummy_num[id.index()];
            if d != 0 {
                lps[ix(d - 1)] = tree.label(id);
                nps[ix(d - 1)] = extnum[id.index()];
            }
            // Entry for the node itself (unless root).
            if let Some(p) = tree.parent(id) {
                let e = extnum[id.index()];
                lps[ix(e - 1)] = tree.label(p);
                nps[ix(e - 1)] = extnum[p.index()];
            }
        }
        PruferSeq { lps, nps }
    }

    /// Reference encoder: literally extend the tree with dummies, number it
    /// in postorder, and repeatedly delete the smallest-numbered leaf.
    /// O(n²); used to validate [`PruferSeq::encode`] in tests.
    pub fn encode_reference(tree: &Tree) -> PruferSeq {
        // Build the extended tree explicitly. Dummies get a sentinel label
        // that can never be recorded (dummies are never parents).
        let post = Postorder::of(tree);
        let n = tree.len();
        // Extended numbering as in `encode`.
        let order = tree.postorder();
        let mut extnum = vec![0u32; n];
        let mut counter = 0u32;
        let mut ext_parent: Vec<u32> = Vec::new(); // 1-based parent per extnode, 0 = root
        let mut ext_label: Vec<Option<Label>> = Vec::new();
        let _ = post;
        // First pass: assign numbers.
        let mut dummy_of = vec![0u32; n];
        for &id in &order {
            if tree.is_leaf(id) {
                counter += 1;
                dummy_of[id.index()] = counter;
            }
            counter += 1;
            extnum[id.index()] = counter;
        }
        let m = ix(counter);
        ext_parent.resize(m + 1, 0);
        ext_label.resize(m + 1, None);
        for &id in &order {
            ext_label[ix(extnum[id.index()])] = Some(tree.label(id));
            if dummy_of[id.index()] != 0 {
                ext_parent[ix(dummy_of[id.index()])] = extnum[id.index()];
            }
            if let Some(p) = tree.parent(id) {
                ext_parent[ix(extnum[id.index()])] = extnum[p.index()];
            }
        }
        // Child counts for leaf detection during deletion.
        let mut child_count = vec![0u32; m + 1];
        for &p in ext_parent.iter().skip(1) {
            if p != 0 {
                child_count[ix(p)] += 1;
            }
        }
        let mut alive = vec![true; m + 1];
        let mut lps = Vec::with_capacity(m - 1);
        let mut nps = Vec::with_capacity(m - 1);
        for _ in 0..m - 1 {
            // Find the smallest-numbered alive leaf.
            let v = (1..=m)
                .find(|&v| alive[v] && child_count[v] == 0)
                .expect("a leaf always exists");
            let p = ext_parent[v];
            nps.push(p);
            lps.push(ext_label[ix(p)].expect("parents are original nodes"));
            alive[v] = false;
            child_count[ix(p)] -= 1;
        }
        PruferSeq { lps, nps }
    }

    /// Length of the sequences (extended node count minus one).
    pub fn len(&self) -> usize {
        self.nps.len()
    }

    /// True if the sequence pair is empty (never produced by `encode`).
    pub fn is_empty(&self) -> bool {
        self.nps.is_empty()
    }

    /// The flat symbol tuple `LPS . NPS` fed to the one-dimensional mapping
    /// (paper Example 2): label codes first, then postorder numbers.
    pub fn symbols(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.lps.len() + self.nps.len());
        out.extend(self.lps.iter().map(|l| l.code()));
        out.extend(self.nps.iter().map(|&n| u64::from(n)));
        out
    }

    /// Decodes the sequence pair back into the original (unextended) tree.
    pub fn decode(&self) -> Result<Tree, DecodeError> {
        if self.lps.len() != self.nps.len() {
            return Err(DecodeError::LengthMismatch);
        }
        if self.nps.is_empty() {
            return Err(DecodeError::Empty);
        }
        // The extended node count m = len + 1 must fit the u32 numbering
        // space; a longer sequence is rejected in-band, never truncated.
        let m = u32::try_from(self.nps.len())
            .ok()
            .and_then(|n| n.checked_add(1))
            .ok_or(DecodeError::TooLong)?;
        // Validate parent numbers and collect labels.
        let mut label: Vec<Option<Label>> = vec![None; ix(m) + 1];
        let mut pos = 0u32;
        for (&p, &l) in self.nps.iter().zip(&self.lps) {
            pos += 1; // never wraps: pos <= nps.len() < m <= u32::MAX
            if p > m {
                return Err(DecodeError::ParentOutOfRange { position: pos });
            }
            if p <= pos {
                return Err(DecodeError::ParentNotGreater { position: pos });
            }
            match &label[ix(p)] {
                None => label[ix(p)] = Some(l),
                Some(existing) if *existing != l => {
                    return Err(DecodeError::InconsistentLabels { node: p })
                }
                _ => {}
            }
        }
        // Original nodes are exactly those appearing in NPS; everything else
        // in 1..m is a dummy. The root is m and must be original.
        let is_original: Vec<bool> = label.iter().map(|l| l.is_some()).collect();
        if !is_original[ix(m)] {
            // Root never appears as a parent only when m == 1, excluded above.
            return Err(DecodeError::MalformedExtension { node: m });
        }
        // Children lists (ascending numbers = original sibling order).
        let mut original_children: Vec<Vec<u32>> = vec![Vec::new(); ix(m) + 1];
        let mut dummy_children: Vec<u32> = vec![0; ix(m) + 1];
        let mut child = 0u32;
        for &p in &self.nps {
            child += 1; // never wraps: child <= nps.len() < m
            if is_original[ix(child)] {
                original_children[ix(p)].push(child);
            } else {
                dummy_children[ix(p)] += 1;
            }
        }
        // Extension invariant: original leaves have exactly one dummy child
        // and no original children; internal nodes have no dummy children.
        for v in 1..=m {
            if !is_original[ix(v)] {
                continue;
            }
            let orig = original_children[ix(v)].len();
            let dums = dummy_children[ix(v)];
            let ok = (orig == 0 && dums == 1) || (orig > 0 && dums == 0);
            if !ok {
                return Err(DecodeError::MalformedExtension { node: v });
            }
        }
        // Build the tree from the root down.
        let mut tree = Tree::leaf(label[ix(m)].expect("root labeled"));
        let mut stack: Vec<(u32, NodeId)> = vec![(m, tree.root())];
        while let Some((num, dst)) = stack.pop() {
            for &c in &original_children[ix(num)] {
                let child_dst = tree.graft_leaf(dst, label[ix(c)].expect("labeled"));
                stack.push((c, child_dst));
            }
        }
        Ok(tree)
    }
}

impl fmt::Display for PruferSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LPS=[")?;
        for (i, l) in self.lps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "] NPS=[")?;
        for (i, n) in self.nps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    fn xyz() -> (LabelTable, Label, Label, Label) {
        let mut t = LabelTable::new();
        let x = t.intern("X");
        let y = t.intern("Y");
        let z = t.intern("Z");
        (t, x, y, z)
    }

    /// Paper Example 1, T1: the chain X → Y → Z.
    /// LPS(T1) = Z Y X, NPS(T1) = 2 3 4.
    #[test]
    fn paper_example1_t1() {
        let (_, x, y, z) = xyz();
        let t1 = Tree::node(x, vec![Tree::node(y, vec![Tree::leaf(z)])]);
        let seq = PruferSeq::encode(&t1);
        assert_eq!(seq.lps, vec![z, y, x]);
        assert_eq!(seq.nps, vec![2, 3, 4]);
    }

    /// Paper Example 1, T2: X with ordered children Y, Z.
    /// LPS(T2) = Y X Z X, NPS(T2) = 2 5 4 5.
    #[test]
    fn paper_example1_t2() {
        let (_, x, y, z) = xyz();
        let t2 = Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]);
        let seq = PruferSeq::encode(&t2);
        assert_eq!(seq.lps, vec![y, x, z, x]);
        assert_eq!(seq.nps, vec![2, 5, 4, 5]);
    }

    #[test]
    fn single_node_tree() {
        let (_, x, _, _) = xyz();
        let t = Tree::leaf(x);
        let seq = PruferSeq::encode(&t);
        // Extended: X plus one dummy; one entry: dummy's parent X (number 2).
        assert_eq!(seq.lps, vec![x]);
        assert_eq!(seq.nps, vec![2]);
        assert_eq!(seq.decode().unwrap(), t);
    }

    #[test]
    fn fast_encoder_matches_reference() {
        let (_, x, y, z) = xyz();
        let trees = vec![
            Tree::leaf(x),
            Tree::node(x, vec![Tree::leaf(y)]),
            Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]),
            Tree::node(
                x,
                vec![
                    Tree::node(y, vec![Tree::leaf(z), Tree::leaf(x)]),
                    Tree::leaf(z),
                    Tree::node(z, vec![Tree::node(x, vec![Tree::leaf(y)])]),
                ],
            ),
        ];
        for t in trees {
            assert_eq!(
                PruferSeq::encode(&t),
                PruferSeq::encode_reference(&t),
                "tree {t}"
            );
        }
    }

    #[test]
    fn roundtrip_various_shapes() {
        let (_, x, y, z) = xyz();
        let trees = vec![
            Tree::leaf(z),
            Tree::node(x, vec![Tree::leaf(x)]),
            Tree::node(x, vec![Tree::leaf(y), Tree::leaf(y), Tree::leaf(y)]),
            Tree::node(
                y,
                vec![
                    Tree::node(x, vec![Tree::node(z, vec![Tree::leaf(y)])]),
                    Tree::node(x, vec![Tree::leaf(z)]),
                ],
            ),
        ];
        for t in trees {
            let seq = PruferSeq::encode(&t);
            assert_eq!(seq.decode().unwrap(), t, "roundtrip failed for {t}");
        }
    }

    #[test]
    fn order_sensitivity() {
        let (_, x, y, z) = xyz();
        let ab = Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]);
        let ba = Tree::node(x, vec![Tree::leaf(z), Tree::leaf(y)]);
        assert_ne!(PruferSeq::encode(&ab), PruferSeq::encode(&ba));
    }

    #[test]
    fn distinct_trees_distinct_sequences() {
        let (_, x, y, z) = xyz();
        // A small zoo of distinct 3-node trees.
        let trees = vec![
            Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]),
            Tree::node(x, vec![Tree::node(y, vec![Tree::leaf(z)])]),
            Tree::node(y, vec![Tree::leaf(x), Tree::leaf(z)]),
            Tree::node(x, vec![Tree::leaf(z), Tree::leaf(y)]),
            Tree::node(z, vec![Tree::node(x, vec![Tree::leaf(y)])]),
        ];
        let mut seen = std::collections::HashSet::new();
        for t in &trees {
            assert!(seen.insert(PruferSeq::encode(t)), "collision for {t}");
        }
    }

    #[test]
    fn symbols_concatenate_lps_then_nps() {
        let (_, x, y, _) = xyz();
        let t = Tree::node(x, vec![Tree::leaf(y)]);
        let seq = PruferSeq::encode(&t);
        let syms = seq.symbols();
        assert_eq!(syms.len(), seq.lps.len() + seq.nps.len());
        assert_eq!(&syms[..seq.lps.len()], &[y.code(), x.code()][..]);
        assert_eq!(
            &syms[seq.lps.len()..],
            &seq.nps.iter().map(|&n| u64::from(n)).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let (_, x, _, _) = xyz();
        let bad = PruferSeq {
            lps: vec![x],
            nps: vec![2, 3],
        };
        assert_eq!(bad.decode(), Err(DecodeError::LengthMismatch));
    }

    #[test]
    fn decode_rejects_empty() {
        let bad = PruferSeq {
            lps: vec![],
            nps: vec![],
        };
        assert_eq!(bad.decode(), Err(DecodeError::Empty));
    }

    #[test]
    fn decode_rejects_non_increasing_parent() {
        let (_, x, _, _) = xyz();
        let bad = PruferSeq {
            lps: vec![x, x],
            nps: vec![1, 3], // NPS[1] = 1 not > position 1
        };
        assert_eq!(
            bad.decode(),
            Err(DecodeError::ParentNotGreater { position: 1 })
        );
    }

    #[test]
    fn decode_rejects_out_of_range_parent() {
        let (_, x, _, _) = xyz();
        let bad = PruferSeq {
            lps: vec![x],
            nps: vec![5],
        };
        assert_eq!(
            bad.decode(),
            Err(DecodeError::ParentOutOfRange { position: 1 })
        );
    }

    #[test]
    fn decode_rejects_inconsistent_labels() {
        let (_, x, y, z) = xyz();
        // Node 5 claimed with both X and Z.
        let bad = PruferSeq {
            lps: vec![y, x, z, z],
            nps: vec![2, 5, 4, 5],
        };
        assert_eq!(bad.decode(), Err(DecodeError::InconsistentLabels { node: 5 }));
    }

    #[test]
    fn decode_rejects_malformed_extension() {
        let (_, x, y, _) = xyz();
        // Node 3 (original: appears in NPS) has an original child (2) AND a
        // dummy child (1): 1 does not appear in NPS so it's a dummy, while 2
        // appears (as parent of nothing? let's construct): m = 4.
        // NPS = [3, 3, 4]: children of 3 are 1 and 2; child of 4 is 3.
        // Node 2 appears? No — values {3, 4}. So both 1 and 2 are dummies
        // and node 3 has two dummy children: malformed.
        let bad = PruferSeq {
            lps: vec![x, x, y],
            nps: vec![3, 3, 4],
        };
        assert_eq!(bad.decode(), Err(DecodeError::MalformedExtension { node: 3 }));
    }

    #[test]
    fn deep_chain_roundtrip() {
        let (_, x, y, _) = xyz();
        let mut t = Tree::leaf(y);
        for _ in 0..50 {
            t = Tree::node(x, vec![t]);
        }
        let seq = PruferSeq::encode(&t);
        assert_eq!(seq.decode().unwrap(), t);
        assert_eq!(PruferSeq::encode_reference(&t), seq);
    }

    #[test]
    fn wide_bush_roundtrip() {
        let (_, x, y, _) = xyz();
        let t = Tree::node(x, (0..40).map(|_| Tree::leaf(y)).collect());
        let seq = PruferSeq::encode(&t);
        assert_eq!(seq.decode().unwrap(), t);
        assert_eq!(PruferSeq::encode_reference(&t), seq);
    }

    #[test]
    fn display_formats() {
        let (_, x, y, _) = xyz();
        let t = Tree::node(x, vec![Tree::leaf(y)]);
        let s = PruferSeq::encode(&t).to_string();
        assert!(s.contains("LPS=") && s.contains("NPS="), "{s}");
    }
}
