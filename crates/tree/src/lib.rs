//! Ordered labeled trees for SketchTree.
//!
//! The stream elements of the SketchTree algorithm (Rao & Moon, ICDE 2006)
//! are *ordered labeled trees* — XML documents, parse trees, phylogenies.
//! This crate provides:
//!
//! * [`label`] — interned labels ([`label::Label`], [`label::LabelTable`]);
//! * [`tree`] — an arena-allocated ordered tree ([`tree::Tree`]) with a
//!   stack-based [`tree::TreeBuilder`] (natural for SAX parsing), structural
//!   constructors, traversals, projections and statistics;
//! * [`postorder`] — 1-based postorder numbering (the node identity scheme
//!   both the paper and PRIX use);
//! * [`prufer`] — *extended Prüfer sequences*: the (LPS, NPS) pair of paper
//!   Section 2.3 that uniquely identifies an ordered labeled tree, with both
//!   the linear-time encoder and the decoder (so the bijection is testable).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod label;
pub mod postorder;
pub mod prufer;
pub mod tree;

pub use label::{Label, LabelTable};
pub use prufer::PruferSeq;
pub use tree::{NodeId, Tree, TreeBuilder};
