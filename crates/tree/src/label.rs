//! Interned node labels.
//!
//! Paper Section 2.2 assumes a function `hash(X)` that "returns a unique
//! number for any given node label X".  We realise it with interning: a
//! [`LabelTable`] assigns each distinct label string a dense [`Label`] id in
//! arrival order.  Interning (rather than hashing label bytes directly)
//! keeps the sequence symbols small, makes equality O(1) during enumeration,
//! and gives query processing a natural "label never seen → count is surely
//! zero" fast path.  (Section 6.1's alternative — Rabin-fingerprinting the
//! label bytes online — is available through
//! `sketchtree_hash::RabinFingerprinter` if a table-free deployment is
//! needed; the core crate's mapping fingerprints whole sequences anyway, so
//! either label coding yields the same collision story.)

use std::collections::HashMap;
use std::fmt;

/// A dense interned label identifier.
///
/// Ids start at 0; the *symbol code* used inside Prüfer-sequence
/// fingerprints is `id + 1`, reserving 0 as the padding symbol required by
/// the pairing function of paper Section 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// The symbol code used in one-dimensional mappings (`id + 1`; 0 is the
    /// reserved pad symbol).
    #[inline]
    pub fn code(self) -> u64 {
        u64::from(self.0) + 1
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only intern table mapping label strings to [`Label`] ids.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    by_name: HashMap<String, Label>,
    names: Vec<String>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a label, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let id = Label(u32::try_from(self.names.len()).expect("label table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a label without interning. `None` means the label has never
    /// appeared in the stream — any pattern containing it has exact count 0.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if the id was not produced by this table.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.0 as usize]
    }

    /// Number of distinct labels interned so far (the paper's `|Σ|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(Label, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("A");
        let a2 = t.intern("A");
        assert_eq!(a, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_arrival_order() {
        let mut t = LabelTable::new();
        assert_eq!(t.intern("X"), Label(0));
        assert_eq!(t.intern("Y"), Label(1));
        assert_eq!(t.intern("X"), Label(0));
        assert_eq!(t.intern("Z"), Label(2));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = LabelTable::new();
        assert_eq!(t.lookup("nope"), None);
        assert!(t.is_empty());
        let a = t.intern("A");
        assert_eq!(t.lookup("A"), Some(a));
    }

    #[test]
    fn name_roundtrip() {
        let mut t = LabelTable::new();
        let a = t.intern("article");
        let b = t.intern("author");
        assert_eq!(t.name(a), "article");
        assert_eq!(t.name(b), "author");
    }

    #[test]
    fn codes_avoid_pad_symbol() {
        let mut t = LabelTable::new();
        let first = t.intern("first");
        assert_eq!(first.code(), 1);
        assert!(first.code() != 0);
    }

    #[test]
    fn iter_in_order() {
        let mut t = LabelTable::new();
        t.intern("a");
        t.intern("b");
        let v: Vec<_> = t.iter().map(|(l, n)| (l.0, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn empty_strings_and_unicode_are_labels_too() {
        let mut t = LabelTable::new();
        let e = t.intern("");
        let u = t.intern("日本語");
        assert_ne!(e, u);
        assert_eq!(t.name(u), "日本語");
    }
}
