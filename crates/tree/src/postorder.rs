//! Postorder numbering.
//!
//! SketchTree (following PRIX) identifies the nodes of a tree by their
//! 1-based postorder numbers: children are numbered left to right before
//! their parent, so the root always gets the largest number `n`.  Postorder
//! numbers are the "unique labels" under which the Prüfer node-removal
//! procedure operates (paper Section 2.3), and they are what the NPS — the
//! Numbered Prüfer Sequence — contains.

use crate::tree::{NodeId, Tree};

/// A postorder numbering of a tree: node id → 1-based postorder number.
///
/// ```
/// use sketchtree_tree::{postorder::Postorder, LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let a = labels.intern("a");
/// let t = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]);
/// let p = Postorder::of(&t);
/// assert_eq!(p.number(t.root()), 3); // the root gets the largest number
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postorder {
    /// `numbers[node.index()]` is the 1-based postorder number.
    numbers: Vec<u32>,
    /// `by_number[k - 1]` is the node with postorder number `k`.
    by_number: Vec<NodeId>,
}

impl Postorder {
    /// Computes the numbering of a tree in linear time.
    pub fn of(tree: &Tree) -> Self {
        let order = tree.postorder();
        let mut numbers = vec![0u32; tree.len()];
        for (i, &id) in order.iter().enumerate() {
            numbers[id.index()] = (i + 1) as u32;
        }
        Self {
            numbers,
            by_number: order,
        }
    }

    /// The 1-based postorder number of a node.
    #[inline]
    pub fn number(&self, id: NodeId) -> u32 {
        self.numbers[id.index()]
    }

    /// The node with the given 1-based postorder number.
    ///
    /// # Panics
    /// Panics if `number` is 0 or larger than the tree size.
    #[inline]
    pub fn node(&self, number: u32) -> NodeId {
        self.by_number[(number - 1) as usize]
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_number.len()
    }

    /// Never empty: every tree has at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;
    use crate::tree::Tree;

    #[test]
    fn single_node() {
        let mut lt = LabelTable::new();
        let t = Tree::leaf(lt.intern("A"));
        let p = Postorder::of(&t);
        assert_eq!(p.number(t.root()), 1);
        assert_eq!(p.node(1), t.root());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn paper_figure6_numbering() {
        // The data tree of paper Figure 6(a): node 7 is the root with
        // children 5 and 6; node 5 has children 3 and 4; node 3 has
        // children 1 and 2.  Reconstruct a tree of that shape and verify
        // postorder numbers follow that exact pattern.
        let mut lt = LabelTable::new();
        let l = lt.intern("x");
        let n3 = Tree::node(l, vec![Tree::leaf(l), Tree::leaf(l)]);
        let n5 = Tree::node(l, vec![n3, Tree::leaf(l)]);
        let t = Tree::node(l, vec![n5, Tree::leaf(l)]);
        let p = Postorder::of(&t);
        // Root must be 7 (= n).
        assert_eq!(p.number(t.root()), 7);
        // Root's children: 5 then 6.
        let kids = t.children(t.root());
        assert_eq!(p.number(kids[0]), 5);
        assert_eq!(p.number(kids[1]), 6);
        // Node 5's children are 3 and 4.
        let k5 = t.children(kids[0]);
        assert_eq!(p.number(k5[0]), 3);
        assert_eq!(p.number(k5[1]), 4);
        // Node 3's children are 1 and 2.
        let k3 = t.children(k5[0]);
        assert_eq!(p.number(k3[0]), 1);
        assert_eq!(p.number(k3[1]), 2);
    }

    #[test]
    fn numbers_are_a_permutation() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let t = Tree::node(
            a,
            vec![
                Tree::node(a, vec![Tree::leaf(a)]),
                Tree::leaf(a),
                Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]),
            ],
        );
        let p = Postorder::of(&t);
        let mut nums: Vec<u32> = (0..t.len()).map(|i| p.number(NodeId(i as u32))).collect();
        nums.sort_unstable();
        assert_eq!(nums, (1..=t.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn descendants_numbered_before_ancestors() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let t = Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)]), Tree::leaf(a)]);
        let p = Postorder::of(&t);
        for id in t.preorder() {
            if let Some(parent) = t.parent(id) {
                assert!(p.number(id) < p.number(parent));
            }
        }
    }

    #[test]
    fn node_number_roundtrip() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let t = Tree::node(a, vec![Tree::leaf(a), Tree::node(a, vec![Tree::leaf(a)])]);
        let p = Postorder::of(&t);
        for k in 1..=t.len() as u32 {
            assert_eq!(p.number(p.node(k)), k);
        }
    }
}
