//! Property-based tests for the Prüfer bijection — the correctness keystone
//! of the whole system: if encode were not injective, distinct patterns
//! would silently share counters.

use proptest::prelude::*;
use sketchtree_tree::{Label, PruferSeq, Tree};

/// Strategy: random ordered labeled trees with up to `max_nodes` nodes and
/// labels from a small alphabet (small alphabets maximise the chance of
/// exposing label-confusion bugs).
fn arb_tree(max_children: usize, depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = (0u32..6).prop_map(|l| Tree::leaf(Label(l)));
    leaf.prop_recursive(depth, 64, max_children as u32, move |inner| {
        (0u32..6, prop::collection::vec(inner, 1..=max_children))
            .prop_map(|(l, children)| Tree::node(Label(l), children))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(t)) == t for arbitrary trees.
    #[test]
    fn roundtrip(t in arb_tree(4, 5)) {
        let seq = PruferSeq::encode(&t);
        prop_assert_eq!(seq.decode().expect("valid encoding"), t);
    }

    /// The linear-time encoder agrees with the literal delete-smallest-leaf
    /// procedure.
    #[test]
    fn fast_encoder_matches_reference(t in arb_tree(4, 4)) {
        prop_assert_eq!(PruferSeq::encode(&t), PruferSeq::encode_reference(&t));
    }

    /// Extended sequences have length n + leaves − 1 and NPS entries are
    /// strictly greater than their positions.
    #[test]
    fn structural_invariants(t in arb_tree(4, 5)) {
        let seq = PruferSeq::encode(&t);
        prop_assert_eq!(seq.len(), t.len() + t.leaf_count() - 1);
        for (i, &p) in seq.nps.iter().enumerate() {
            prop_assert!(p > i as u32 + 1, "NPS[{}] = {} not > position", i, p);
            prop_assert!(p <= seq.len() as u32 + 1);
        }
    }

    /// Distinct trees produce distinct sequence pairs (injectivity, checked
    /// pairwise within a random batch).
    #[test]
    fn injective_on_batches(trees in prop::collection::vec(arb_tree(3, 4), 2..10)) {
        for i in 0..trees.len() {
            for j in (i + 1)..trees.len() {
                let same_tree = trees[i] == trees[j];
                let same_seq = PruferSeq::encode(&trees[i]) == PruferSeq::encode(&trees[j]);
                prop_assert_eq!(same_tree, same_seq,
                    "trees {} and {}: tree-eq {} but seq-eq {}",
                    trees[i], trees[j], same_tree, same_seq);
            }
        }
    }

    /// The symbol tuple determines the sequence pair (no information lost
    /// in flattening LPS.NPS, given the self-delimiting symbol encoding).
    #[test]
    fn symbols_faithful(a in arb_tree(3, 4), b in arb_tree(3, 4)) {
        let sa = PruferSeq::encode(&a);
        let sb = PruferSeq::encode(&b);
        if sa.symbols() == sb.symbols() {
            prop_assert_eq!(sa, sb);
        }
    }

    /// Postorder traversal and the tree agree on parenthood (tree sanity
    /// underlying everything above).
    #[test]
    fn postorder_parents_after_children(t in arb_tree(4, 5)) {
        let order = t.postorder();
        let mut seen = std::collections::HashSet::new();
        for id in order {
            for &c in t.children(id) {
                prop_assert!(seen.contains(&c), "child visited after parent");
            }
            seen.insert(id);
        }
    }
}
