//! Property tests for the `SKTP` wire protocol: every frame type
//! round-trips through encode → frame → decode, and malformed bytes
//! always come back as protocol errors — never panics, never hangs.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sketchtree_server::wire::{
    read_frame, Frame, Request, Response, Stats, WireError, DEFAULT_MAX_FRAME,
};
use sketchtree_tree::{Label, Tree};
use std::io::Cursor;

/// Random ordered labeled trees over a small batch-local alphabet.
fn arb_tree(labels: u32) -> impl Strategy<Value = Tree> {
    let leaf = (0u32..labels).prop_map(|l| Tree::leaf(Label(l)));
    leaf.prop_recursive(4, 32, 4, move |inner| {
        (0u32..labels, prop::collection::vec(inner, 1..=4))
            .prop_map(|(l, children)| Tree::node(Label(l), children))
    })
}

/// Every request variant, with arbitrary contents.
fn arb_request() -> impl Strategy<Value = Request> {
    let labels = || prop::collection::vec("[a-z]{1,8}", 1..6);
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Snapshot),
        Just(Request::Shutdown),
        prop::collection::vec("\\PC{0,40}", 0..5).prop_map(Request::IngestXml),
        (labels(), prop::collection::vec(arb_tree(5), 0..4)).prop_map(|(mut labels, trees)| {
            // The tree strategy draws labels from 0..5; pad the name
            // table so every index is valid.
            while labels.len() < 5 {
                labels.push(format!("pad{}", labels.len()));
            }
            Request::IngestTrees { labels, trees }
        }),
        (any::<bool>(), "\\PC{0,30}")
            .prop_map(|(unordered, pattern)| Request::Count { unordered, pattern }),
        "\\PC{0,40}".prop_map(Request::Expr),
        (0u32..1000).prop_map(|limit| Request::HeavyHitters { limit }),
        any::<bool>().prop_map(|json| Request::Metrics { json }),
    ]
}

/// Every response variant, with arbitrary contents.
fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::ShuttingDown),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(trees, patterns, total_trees, total_patterns)| Response::Ingested {
                trees,
                patterns,
                total_trees,
                total_patterns,
            }
        ),
        (-1e12f64..1e12).prop_map(Response::Estimate),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c)| {
            Response::Stats(Stats {
                trees_processed: a,
                patterns_processed: b,
                labels: c,
                memory_bytes: a ^ b,
                max_pattern_edges: b % 17,
                s1: 25,
                s2: 7,
                virtual_streams: 229,
                topk: 50,
            })
        }),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..20).prop_map(|entries| {
            Response::HeavyHitters(entries.into_iter().map(|(v, f)| (v, f as i64)).collect())
        }),
        (any::<u64>()).prop_map(|bytes| Response::SnapshotDone { bytes }),
        // Exposition payloads: newline-heavy, `{}`-quoted label text.
        "(\\PC|\\n){0,120}".prop_map(Response::Metrics),
        "\\PC{0,60}".prop_map(Response::Error),
    ]
}

fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    sketchtree_server::wire::write_frame(&mut buf, kind, payload).expect("vec write");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → write_frame → read_frame → decode is the identity on
    /// every request variant.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let bytes = frame_bytes(req.kind(), &req.encode());
        let Frame::Msg { kind, payload } =
            read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).expect("valid frame")
        else {
            prop_assert!(false, "frame did not read back");
            unreachable!()
        };
        prop_assert_eq!(Request::decode(kind, &payload).expect("valid payload"), req);
    }

    /// Same identity for every response variant.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let bytes = frame_bytes(resp.kind(), &resp.encode());
        let Frame::Msg { kind, payload } =
            read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).expect("valid frame")
        else {
            prop_assert!(false, "frame did not read back");
            unreachable!()
        };
        prop_assert_eq!(Response::decode(kind, &payload).expect("valid payload"), resp);
    }

    /// Any prefix of a valid frame is Truncated (or Eof for the empty
    /// prefix), never a panic or a bogus success.
    #[test]
    fn prefixes_truncate(req in arb_request(), frac in 0.0f64..1.0) {
        let bytes = frame_bytes(req.kind(), &req.encode());
        let cut = ((bytes.len() as f64) * frac) as usize;
        match read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME) {
            Ok(Frame::Eof) => prop_assert_eq!(cut, 0, "Eof only on the empty prefix"),
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut {}: {:?}", cut, other),
        }
    }
}

/// Deterministic mutation fuzz: flip random bytes in valid frames and in
/// their payloads; every outcome must be a clean `Ok` or `Err`, and the
/// reader must consume input without blocking (a `Cursor` cannot block,
/// so termination here is the no-hang guarantee at the parsing layer).
#[test]
fn mutated_frames_never_panic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_F422);
    let seeds: Vec<Vec<u8>> = vec![
        frame_bytes(Request::Ping.kind(), &Request::Ping.encode()),
        {
            let r = Request::IngestXml(vec!["<a><b/></a>".into(); 3]);
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let t = Tree::node(Label(0), vec![Tree::leaf(Label(1)), Tree::leaf(Label(0))]);
            let r = Request::IngestTrees {
                labels: vec!["x".into(), "y".into()],
                trees: vec![t.clone(), t],
            };
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let r = Request::Count { unordered: false, pattern: "A(B,C)".into() };
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let r = Response::HeavyHitters(vec![(1, 2), (3, -4), (5, 6)]);
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let r = Request::Metrics { json: true };
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let r = Response::Metrics(
                "# TYPE sktp_frames_total counter\nsktp_frames_total{direction=\"in\"} 12\n"
                    .into(),
            );
            frame_bytes(r.kind(), &r.encode())
        },
        {
            let r = Response::Stats(Stats {
                trees_processed: 9,
                patterns_processed: 81,
                labels: 3,
                memory_bytes: 1 << 20,
                max_pattern_edges: 4,
                s1: 25,
                s2: 7,
                virtual_streams: 229,
                topk: 50,
            });
            frame_bytes(r.kind(), &r.encode())
        },
    ];
    let mut decoded = 0u32;
    let mut rejected = 0u32;
    for seed in &seeds {
        for _ in 0..2_000 {
            let mut bytes = seed.clone();
            // 1–8 random single-byte mutations.
            for _ in 0..rng.gen_range(1usize..=8) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = (rng.gen::<u32>() & 0xFF) as u8;
            }
            // Occasionally truncate or extend as well.
            match rng.gen_range(0u32..4) {
                0 => {
                    let keep = rng.gen_range(0..=bytes.len());
                    bytes.truncate(keep);
                }
                1 => bytes.extend((0..rng.gen_range(1usize..16)).map(|_| 0xAAu8)),
                _ => {}
            }
            match read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME) {
                Ok(Frame::Msg { kind, payload }) => {
                    // Both decoders must handle arbitrary payloads for
                    // arbitrary kinds without panicking.
                    match (Request::decode(kind, &payload), Response::decode(kind, &payload)) {
                        (Ok(_), _) | (_, Ok(_)) => decoded += 1,
                        _ => rejected += 1,
                    }
                }
                Ok(Frame::Eof) | Ok(Frame::Idle) | Err(_) => rejected += 1,
            }
        }
    }
    // The sweep must have exercised both paths.
    assert!(decoded > 0, "no mutant survived — mutation too destructive?");
    assert!(rejected > 0, "every mutant survived — guards not firing?");
}

/// A mutated frame that *decodes* must re-encode to a frame that decodes
/// to the same value (decode is a partial inverse of encode even on
/// hostile input).
#[test]
fn surviving_mutants_reencode_stably() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let base = {
        let r = Request::IngestXml(vec!["<a/>".into(), "<b/>".into()]);
        frame_bytes(r.kind(), &r.encode())
    };
    for _ in 0..4_000 {
        let mut bytes = base.clone();
        let at = rng.gen_range(0..bytes.len());
        bytes[at] = (rng.gen::<u32>() & 0xFF) as u8;
        if let Ok(Frame::Msg { kind, payload }) =
            read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME)
        {
            if let Ok(req) = Request::decode(kind, &payload) {
                let rebytes = frame_bytes(req.kind(), &req.encode());
                let Ok(Frame::Msg { kind: k2, payload: p2 }) =
                    read_frame(&mut Cursor::new(&rebytes), DEFAULT_MAX_FRAME)
                else {
                    panic!("re-encoded frame must read back");
                };
                assert_eq!(Request::decode(k2, &p2).expect("re-decode"), req);
            }
        }
    }
}
