//! Soak test: one server, four concurrent ingest clients and four
//! concurrent query clients hammering it for ~5 seconds.  Ignored by
//! default — run with `cargo test -p sketchtree-server -- --ignored`.

use sketchtree_core::sketchtree::SketchTreeConfig;
use sketchtree_server::{Client, Server, ServerConfig};
use sketchtree_sketch::SynopsisConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
#[ignore = "~5s soak; run explicitly with -- --ignored"]
fn concurrent_ingest_and_query_soak() {
    let config = ServerConfig {
        workers: 8,
        sketch: SketchTreeConfig {
            max_pattern_edges: 2,
            synopsis: SynopsisConfig {
                s1: 40,
                s2: 5,
                virtual_streams: 31,
                topk: 8,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("server starts");
    let addr = server.addr();

    let deadline = Instant::now() + Duration::from_secs(5);
    let stop = Arc::new(AtomicBool::new(false));
    let docs_sent = Arc::new(AtomicU64::new(0));

    // Four ingest clients, each streaming distinct small documents in
    // batches until the deadline.
    let ingesters: Vec<_> = (0..4)
        .map(|worker: u64| {
            let stop = Arc::clone(&stop);
            let docs_sent = Arc::clone(&docs_sent);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("ingest client connects");
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<String> = (0..16)
                        .map(|i| {
                            format!(
                                "<root><w{}>item</w{}><n{}/></root>",
                                worker,
                                worker,
                                (round + i) % 3
                            )
                        })
                        .collect();
                    let summary = client.ingest_xml(&batch).expect("ingest succeeds");
                    assert_eq!(summary.trees, 16);
                    docs_sent.fetch_add(16, Ordering::Relaxed);
                    round += 16;
                }
            })
        })
        .collect();

    // Four query clients mixing counts, stats, and heavy hitters.  The
    // answers drift as ingest proceeds; the invariant under load is that
    // every reply is well-formed and monotone where it should be.
    let queriers: Vec<_> = (0..4)
        .map(|q: u64| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("query client connects");
                let mut last_trees = 0u64;
                let mut queries = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match q % 4 {
                        0 => {
                            let est = client.count_ordered("root(w0)").expect("count");
                            assert!(est.is_finite());
                        }
                        1 => {
                            let est = client.count_unordered("root(n0)").expect("count");
                            assert!(est.is_finite());
                        }
                        2 => {
                            let hh = client.heavy_hitters(8).expect("heavy hitters");
                            assert!(hh.len() <= 8);
                        }
                        _ => {}
                    }
                    let stats = client.stats().expect("stats");
                    assert!(
                        stats.trees_processed >= last_trees,
                        "trees_processed went backwards: {} -> {}",
                        last_trees,
                        stats.trees_processed
                    );
                    last_trees = stats.trees_processed;
                    queries += 1;
                }
                queries
            })
        })
        .collect();

    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    for t in ingesters {
        t.join().expect("ingester clean exit");
    }
    let total_queries: u64 = queriers.into_iter().map(|t| t.join().expect("querier")).sum();

    // Exactness: every document an ingest client was told about must be
    // in the server's count — no drops, no double counting.
    let sent = docs_sent.load(Ordering::Relaxed);
    let mut client = Client::connect(addr).expect("final client");
    let stats = client.stats().expect("final stats");
    assert_eq!(stats.trees_processed, sent, "server lost or duplicated trees");
    assert!(sent > 0, "soak sent no documents");
    assert!(total_queries > 0, "soak ran no queries");

    server.shutdown().expect("clean shutdown");
}
