//! Regression tests for server hardening: hostile-but-legal wire input
//! (duplicate batch labels), checkpoint serialization under concurrent
//! snapshot requests, and the idle-connection timeout.

use sketchtree_core::sketchtree::SketchTreeConfig;
use sketchtree_server::wire::{frame_bytes, read_frame, write_frame, Frame, Request, Response};
use sketchtree_server::{Client, Server, ServerConfig, ServerMetrics, SubscribeMode, Subscriptions};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_standing::{QueryMode, QuerySpec};
use sketchtree_tree::{Label, Tree};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn config(seed: u64) -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 5,
            virtual_streams: 31,
            topk: 8,
            seed,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

/// Duplicate names in an `IngestTrees` batch label table are legal on the
/// wire (node labels are positional indices).  They must neither panic a
/// worker nor shift later indices onto the wrong name.
#[test]
fn duplicate_batch_labels_ingest_correctly() {
    // Batch with duplicates: indices 0 and 1 are both "a", index 2 is
    // "b".  Referencing index 1 used to panic (out-of-bounds remap) and
    // referencing index 2 used to silently resolve to the wrong label.
    let dup_labels = vec!["a".to_string(), "a".to_string(), "b".to_string()];
    let dup_trees = vec![
        Tree::node(Label(0), vec![Tree::leaf(Label(2))]),
        Tree::node(Label(1), vec![Tree::leaf(Label(2))]),
    ];
    // The same stream spelled with a deduplicated table.
    let dedup_labels = vec!["a".to_string(), "b".to_string()];
    let dedup_trees = vec![
        Tree::node(Label(0), vec![Tree::leaf(Label(1))]),
        Tree::node(Label(0), vec![Tree::leaf(Label(1))]),
    ];

    let seed = 11;
    let dup_server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("server starts");
    let dedup_server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("server starts");

    let mut dup_client = Client::connect(dup_server.addr()).expect("connect");
    let summary = dup_client
        .ingest_trees(dup_labels, dup_trees)
        .expect("duplicate labels must ingest, not panic the worker");
    assert_eq!(summary.trees, 2);
    // The worker that served the batch must still be alive.
    dup_client.ping().expect("worker survived the batch");

    let mut dedup_client = Client::connect(dedup_server.addr()).expect("connect");
    dedup_client.ingest_trees(dedup_labels, dedup_trees).expect("ingest");

    // Same stream ⇒ same sketch state ⇒ bit-identical estimates.
    for q in ["a(b)", "a", "b"] {
        let dup = dup_client.count_ordered(q).expect("query");
        let dedup = dedup_client.count_ordered(q).expect("query");
        assert_eq!(dup.to_bits(), dedup.to_bits(), "{q}: {dup} != {dedup}");
    }

    dup_server.shutdown().expect("clean shutdown");
    dedup_server.shutdown().expect("clean shutdown");
}

/// Concurrent `Snapshot` requests racing the periodic checkpoint thread
/// must never publish a torn snapshot: a restart from the checkpoint has
/// to succeed with the full stream intact.
#[test]
fn concurrent_snapshots_leave_a_loadable_checkpoint() {
    let snap = {
        let mut p = std::env::temp_dir();
        p.push(format!("sketchtree-regr-ckpt-{}.bin", std::process::id()));
        p
    };
    std::fs::remove_file(&snap).ok();

    let seed = 23;
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(seed),
            checkpoint_path: Some(snap.clone()),
            checkpoint_interval: Some(Duration::from_millis(10)),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let docs: Vec<String> =
        (0..64).map(|i| format!("<root><k{}>x</k{}></root>", i % 5, i % 5)).collect();
    let mut ingest_client = Client::connect(addr).expect("connect");
    ingest_client.ingest_xml(&docs).expect("ingest");

    // Hammer explicit snapshots from several threads while the periodic
    // thread keeps checkpointing on its own clock.
    let snappers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..20 {
                    let bytes = c.snapshot().expect("snapshot");
                    assert!(bytes > 0);
                }
            })
        })
        .collect();
    for t in snappers {
        t.join().expect("snapshot thread");
    }
    server.shutdown().expect("clean shutdown");

    // Whatever the race published, the file on disk must be a complete
    // snapshot of the full stream.
    let restarted = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(seed),
            checkpoint_path: Some(snap.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("restart from checkpoint must not see a torn file");
    let mut client = Client::connect(restarted.addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.trees_processed, docs.len() as u64);

    restarted.shutdown().expect("clean shutdown");
    std::fs::remove_file(&snap).ok();
}

/// A connection that never sends a frame must be dropped after
/// `idle_timeout`, freeing its worker for queued connections.
#[test]
fn idle_connection_is_closed_and_frees_its_worker() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(50),
            idle_timeout: Duration::from_millis(200),
            sketch: config(5),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    // Occupy the only worker with a silent connection.
    let mut idle = TcpStream::connect(server.addr()).expect("idle connect");
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A real client behind it must still get served once the idle
    // connection times out.
    let start = Instant::now();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("queued client is served after the idle drop");
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "queued client waited {:?} behind an idle connection",
        start.elapsed()
    );

    // And the idle connection itself was closed by the server.
    let mut buf = [0u8; 1];
    match idle.read(&mut buf) {
        Ok(0) => {}
        other => panic!("idle connection should see EOF, got {other:?}"),
    }

    server.shutdown().expect("clean shutdown");
}

/// The `ingest_threads` knob selects the parallel pipeline width, and the
/// synopsis must be bit-identical at every setting: two servers fed the
/// same `IngestTrees` batch through 1-thread and 8-thread pipelines have
/// to agree on every count, stat and heavy hitter exactly.
#[test]
fn ingest_thread_count_does_not_change_the_synopsis() {
    let labels = vec!["a".to_string(), "b".to_string(), "c".to_string()];
    let trees: Vec<Tree> = (0..120)
        .map(|i| match i % 3 {
            0 => Tree::node(Label(0), vec![Tree::leaf(Label(1)), Tree::leaf(Label(2))]),
            1 => Tree::node(Label(0), vec![Tree::node(Label(1), vec![Tree::leaf(Label(2))])]),
            _ => Tree::node(Label(1), vec![Tree::leaf(Label(2)), Tree::leaf(Label(2))]),
        })
        .collect();

    let seed = 23;
    let run = |ingest_threads: usize| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                ingest_threads,
                sketch: config(seed),
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let mut client = Client::connect(server.addr()).expect("connect");
        let summary = client
            .ingest_trees(labels.clone(), trees.clone())
            .expect("ingest");
        assert_eq!(summary.trees, 120);
        let stats = client.stats().expect("stats");
        let counts: Vec<f64> = ["a(b,c)", "a(b)", "b(c)"]
            .iter()
            .map(|q| client.count_ordered(q).expect("count"))
            .collect();
        let heavy = client.heavy_hitters(16).expect("heavy");
        server.shutdown().expect("clean shutdown");
        (stats.patterns_processed, counts, heavy)
    };

    let single = run(1);
    let parallel = run(8);
    assert_eq!(single.0, parallel.0, "pattern totals diverged");
    // Bit-identical synopses estimate bit-identically — exact float
    // equality, not tolerance.
    assert_eq!(single.1, parallel.1, "estimates diverged across thread counts");
    assert_eq!(single.2, parallel.2, "heavy hitters diverged");
}

/// `subscribe` now registers with the query registry *before* taking the
/// table mutex (the two may never nest, per the documented lock order),
/// which means an over-cap subscription registers first and must roll the
/// registration back.  A leak here would pin a compiled plan — and its
/// per-batch evaluation cost — forever.
#[test]
fn subscription_cap_rejection_does_not_leak_a_registry_entry() {
    let subs = Subscriptions::new(ServerMetrics::new(), 1);
    let (tx, _rx) = std::sync::mpsc::sync_channel(4);
    let spec = |q: &str| QuerySpec::parse(QueryMode::Ordered, q).unwrap();

    let id = subs.subscribe(7, spec("a(b)"), tx.clone()).expect("first fits the cap");
    let err = subs
        .subscribe(7, spec("a(c)"), tx.clone())
        .expect_err("second subscription exceeds the cap");
    assert!(err.contains("cap"), "{err}");
    assert_eq!(subs.distinct_queries(), 1, "cap rejection leaked a compiled plan");
    assert_eq!(subs.active(), 1);

    // The cap is per-connection: another connection may subscribe to the
    // very query conn 7 was refused.
    let other = subs.subscribe(8, spec("a(c)"), tx).expect("cap is per-connection");
    assert_eq!(subs.distinct_queries(), 2);

    assert!(subs.unsubscribe(7, id));
    assert!(subs.unsubscribe(8, other));
    assert_eq!(subs.distinct_queries(), 0, "unsubscribe left a plan resident");
    assert_eq!(subs.active(), 0);
}

/// The pusher thread and the response path now assemble frames with
/// [`frame_bytes`] outside the shared-writer mutex and write one
/// contiguous buffer under it.  That buffer must be bit-identical to what
/// [`write_frame`] streams, and must round-trip through [`read_frame`].
#[test]
fn frame_bytes_matches_write_frame_and_round_trips() {
    let payload: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
    let built = frame_bytes(0x01, &payload).expect("frame assembles");
    let mut streamed = Vec::new();
    write_frame(&mut streamed, 0x01, &payload).expect("frame writes");
    assert_eq!(built, streamed, "pre-assembled frames must match the streaming writer");

    let mut cursor = std::io::Cursor::new(built);
    match read_frame(&mut cursor, 1 << 20).expect("frame parses") {
        Frame::Msg { kind, payload: got } => {
            assert_eq!(kind, 0x01);
            assert_eq!(got, payload);
        }
        other => panic!("expected a message frame, got {other:?}"),
    }
}

/// End-to-end over the PR 6 push path: a live subscription receives its
/// update through the pusher thread (whose drain loop was restructured to
/// hold the writer mutex only for the socket write), while the same
/// connection keeps issuing requests on the response path.  Interleaved
/// frames must stay individually intact.
#[test]
fn pushed_updates_interleave_with_responses_without_tearing_frames() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(31), ..ServerConfig::default() },
    )
    .expect("server starts");

    let mut sub_client = Client::connect(server.addr()).expect("connect");
    let (sub_id, _epoch) =
        sub_client.subscribe(SubscribeMode::Ordered, "a(b)").expect("subscribe");

    let mut feeder = Client::connect(server.addr()).expect("connect");
    for round in 0..5 {
        feeder
            .ingest_xml(&["<a><b>x</b></a>".to_string()])
            .expect("ingest triggers a broadcast");
        let update = sub_client
            .next_update(Duration::from_secs(10))
            .expect("update frame arrives intact")
            .expect("update pushed within the timeout");
        assert_eq!(update.id, sub_id);
        let est = update.result.expect("query evaluates");
        assert!(est.is_finite(), "round {round}: pushed estimate {est:?}");
        // Response path on the same connection, racing the pusher for
        // the shared writer: the reply frame must parse cleanly too.
        sub_client.ping().expect("response path healthy between pushes");
    }

    sub_client.unsubscribe(sub_id).expect("unsubscribe");
    server.shutdown().expect("clean shutdown");
}

/// A peer that trickles a frame in pieces — each gap longer than the
/// server's socket `read_timeout` — must be answered, not disconnected.
/// Before `read_frame_patient`, the first mid-frame timeout surfaced as
/// `WireError::Truncated` and the server reset the connection, turning
/// backpressure on slow ingesters into an error.
#[test]
fn trickled_frame_is_served_not_disconnected() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(5),
            sketch: config(41),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut frame = Vec::new();
    Request::IngestXml(vec!["<a><b>x</b></a>".to_string()])
        .write_to(&mut frame)
        .expect("frame encodes");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    // Drip the frame out in thirds, stalling well past the server's
    // read_timeout between writes — mid-header and mid-payload.
    let third = frame.len() / 3;
    for chunk in [&frame[..5], &frame[5..5 + third], &frame[5 + third..]] {
        stream.write_all(chunk).expect("trickled write");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }

    let reply = loop {
        match read_frame(&mut stream, 1 << 20).expect("reply frame parses") {
            Frame::Msg { kind, payload } => {
                break Response::decode(kind, &payload).expect("reply decodes")
            }
            Frame::Idle => continue,
            Frame::Eof => panic!("server disconnected a slow-but-live ingester"),
        }
    };
    match reply {
        Response::Ingested { trees, .. } => assert_eq!(trees, 1),
        other => panic!("expected an ingest summary, got {other:?}"),
    }

    server.shutdown().expect("clean shutdown");
}

/// The server processes each connection's frames strictly in order, so a
/// client may pipeline several requests before reading any reply and must
/// get the replies back in send order.  Exercises the
/// `Client::send`/`Client::recv_reply` split API end to end.
#[test]
fn pipelined_requests_are_answered_in_send_order() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(43), ..ServerConfig::default() },
    )
    .expect("server starts");

    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .ingest_xml(&["<a><b>x</b></a>".to_string()])
        .expect("seed one tree so counts are nonzero");

    // A kind-distinguishable sequence: the reply types themselves prove
    // the ordering.
    let count = Request::Count { unordered: false, pattern: "a(b)".to_string() };
    let reqs =
        [Request::Ping, Request::Stats, count.clone(), Request::Ping, count, Request::Stats];
    for req in &reqs {
        client.send(req).expect("pipelined send");
    }
    for (i, req) in reqs.iter().enumerate() {
        let reply = client.recv_reply().expect("pipelined reply");
        let ok = matches!(
            (req, &reply),
            (Request::Ping, Response::Pong)
                | (Request::Stats, Response::Stats(_))
                | (Request::Count { .. }, Response::Estimate(_))
        );
        assert!(ok, "reply {i} out of order: sent {req:?}, got {reply:?}");
        if let Response::Estimate(v) = reply {
            assert!(v > 0.0, "seeded count came back {v}");
        }
    }

    server.shutdown().expect("clean shutdown");
}

/// Backpressure contract for flooding ingesters: a connection that
/// pipelines a long run of ingest batches without reading replies (a)
/// never loses or reorders an ack, (b) sees monotone totals, and (c)
/// cannot starve other connections, which keep getting served by the
/// rest of the worker pool.
#[test]
fn ingest_flood_is_backpressured_without_starving_other_connections() {
    const BATCHES: usize = 120;
    const DOCS_PER_BATCH: u64 = 10;

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { workers: 2, sketch: config(47), ..ServerConfig::default() },
    )
    .expect("server starts");

    // Flooder: writes every batch up front, reads nothing yet.  Replies
    // pile up in the socket buffers — that, plus the server reading one
    // frame at a time, is the backpressure bound.
    let mut flood = TcpStream::connect(server.addr()).expect("connect");
    flood.set_nodelay(true).unwrap();
    flood.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let docs: Vec<String> =
        (0..DOCS_PER_BATCH).map(|i| format!("<a><b>x{i}</b></a>")).collect();
    let mut frame = Vec::new();
    Request::IngestXml(docs).write_to(&mut frame).expect("frame encodes");
    for _ in 0..BATCHES {
        flood.write_all(&frame).expect("flood write");
    }
    flood.flush().unwrap();

    // While the flood drains, a second connection must still be served
    // promptly by the other worker.
    let mut other = Client::connect(server.addr()).expect("connect");
    let start = Instant::now();
    for _ in 0..5 {
        other.ping().expect("other connection served during the flood");
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "other connection starved for {:?} behind an ingest flood",
        start.elapsed()
    );

    // Drain all acks: exactly one per batch, in order, totals monotone.
    let mut last_total = 0u64;
    for batch in 0..BATCHES {
        let reply = loop {
            match read_frame(&mut flood, 1 << 20).expect("ack frame parses") {
                Frame::Msg { kind, payload } => {
                    break Response::decode(kind, &payload).expect("ack decodes")
                }
                Frame::Idle => continue,
                Frame::Eof => panic!("server dropped the flooder at batch {batch}"),
            }
        };
        match reply {
            Response::Ingested { trees, total_trees, .. } => {
                assert_eq!(trees, DOCS_PER_BATCH, "batch {batch}");
                assert!(
                    total_trees > last_total,
                    "batch {batch}: total went {last_total} -> {total_trees}"
                );
                last_total = total_trees;
            }
            other => panic!("batch {batch}: expected an ingest summary, got {other:?}"),
        }
    }
    assert_eq!(last_total, BATCHES as u64 * DOCS_PER_BATCH);

    server.shutdown().expect("clean shutdown");
}

/// Concurrent batch ingests fire the post-batch hook concurrently (it
/// runs under the *shared* read lock).  Before the broadcast gate in
/// `Subscriptions`, two racing broadcasts could interleave their
/// per-subscription enqueues and push epochs out of order — the loadgen
/// harness caught subscribers seeing epochs go backwards.  Epochs on one
/// subscription must be strictly increasing.
#[test]
fn concurrent_ingest_pushes_strictly_increasing_epochs() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { workers: 6, sketch: config(47), ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = server.addr();

    let mut sub_client = Client::connect(addr).expect("connect");
    let (sub_id, _epoch) =
        sub_client.subscribe(SubscribeMode::Ordered, "a(b)").expect("subscribe");

    // Four connections hammer batches concurrently so broadcasts race.
    const FEEDERS: usize = 4;
    const BATCHES: usize = 25;
    let feeders: Vec<_> = (0..FEEDERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("feeder connects");
                for _ in 0..BATCHES {
                    c.ingest_xml(&[
                        "<a><b>x</b></a>".to_string(),
                        "<a><b>y</b><b>z</b></a>".to_string(),
                    ])
                    .expect("feeder batch");
                }
            })
        })
        .collect();

    let mut last_epoch = 0u64;
    let mut updates = 0u32;
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        match sub_client.next_update(Duration::from_millis(200)).expect("update path healthy") {
            Some(u) => {
                assert_eq!(u.id, sub_id);
                assert!(
                    u.epoch > last_epoch,
                    "epoch regressed: {last_epoch} then {}",
                    u.epoch
                );
                last_epoch = u.epoch;
                updates += 1;
            }
            None if feeders.iter().all(|h| h.is_finished()) => break,
            None => continue,
        }
    }
    for h in feeders {
        h.join().expect("feeder thread");
    }
    assert!(updates > 0, "no updates pushed at all");

    sub_client.unsubscribe(sub_id).expect("unsubscribe");
    server.shutdown().expect("clean shutdown");
}
