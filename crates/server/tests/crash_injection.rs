//! Crash-injection tests for the durability subsystem: power-cut
//! simulation over write-ahead-log truncation points, checkpoint
//! atomicity regressions, stale-temp-file cleanup, and the
//! corrupt-checkpoint quarantine path.
//!
//! The central property (`recovery_is_bit_identical_at_any_truncation_point`)
//! is the paper-level guarantee: whatever prefix of the log survives a
//! power cut, recover-on-start yields a synopsis *byte-identical* to one
//! that ingested exactly the surviving acked batches — reusing the
//! workspace's snapshot byte-parity machinery as the equality oracle.

use proptest::prelude::*;
use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::snapshot::write_snapshot;
use sketchtree_server::durability::{recover, WalConfig};
use sketchtree_server::{Server, ServerConfig, ServerMetrics};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::{Label, Tree, TreeBuilder};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn config(seed: u64) -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 5,
            virtual_streams: 31,
            topk: 8,
            seed,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

static CASE: AtomicU64 = AtomicU64::new(0);

/// Fresh per-test scratch directory (unique across parallel tests and
/// proptest cases).
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sk-crash-{}-{tag}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

/// A deterministic stream of ingest batches with overlapping and
/// batch-private label names (so replay exercises interning order) and
/// varied tree shapes.
fn batches() -> Vec<(Vec<String>, Vec<Tree>)> {
    (0..6u32)
        .map(|i| {
            let labels = vec![
                "a".to_string(),
                format!("b{}", i % 3),
                format!("only{i}"),
            ];
            let trees = vec![
                Tree::node(Label(0), vec![Tree::leaf(Label(1)), Tree::leaf(Label(2))]),
                Tree::node(Label(1), vec![Tree::node(Label(0), vec![Tree::leaf(Label(2))])]),
                Tree::leaf(Label(2)),
            ];
            (labels, trees)
        })
        .collect()
}

/// Rebuilds `tree` with labels translated through `map` — the test-side
/// twin of the server's remap, used to build reference synopses.
fn remap(tree: &Tree, map: &[Label]) -> Tree {
    fn go(tree: &Tree, id: sketchtree_tree::NodeId, map: &[Label], b: &mut TreeBuilder) {
        b.open(map[tree.label(id).0 as usize]).expect("valid nesting");
        for &child in tree.children(id) {
            go(tree, child, map, b);
        }
        b.close().expect("valid nesting");
    }
    let mut b = TreeBuilder::new();
    go(tree, tree.root(), map, &mut b);
    b.finish().expect("complete tree")
}

/// Applies one batch to a reference synopsis exactly as the server's
/// ingest (and WAL replay) does: intern the batch labels in order, remap
/// positionally, ingest tree by tree.
fn apply(st: &mut SketchTree, labels: &[String], trees: &[Tree]) {
    let map: Vec<Label> = {
        let table = st.labels_mut();
        labels.iter().map(|name| table.intern(name)).collect()
    };
    for tree in trees {
        st.ingest(&remap(tree, &map));
    }
}

/// Reference synopsis after the first `n` batches, with the durability
/// cursor forced to `wal_seq` (the one field the WAL layer owns).
fn reference(seed: u64, n: usize, wal_seq: u64) -> SketchTree {
    let mut st = SketchTree::new(config(seed));
    for (labels, trees) in &batches()[..n] {
        apply(&mut st, labels, trees);
    }
    st.set_wal_seq(wal_seq);
    st
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Power-cut simulation: a checkpoint covering the first
    /// `ckpt_after` batches, a WAL carrying the rest, and the WAL file
    /// cut at an arbitrary byte.  Recovery must (a) never error, (b)
    /// replay exactly the frames that survived whole, and (c) produce a
    /// synopsis byte-identical to ingesting exactly those batches.
    #[test]
    fn recovery_is_bit_identical_at_any_truncation_point(
        cut_ppm in 0u64..=1_000_000,
        ckpt_after in 0usize..=3,
    ) {
        let all = batches();
        let dir = scratch("trunc");
        let ckpt = dir.join("state.snap");
        let wal_path = dir.join("state.wal");

        // A durable checkpoint covering the first `ckpt_after` batches.
        let base = reference(7, ckpt_after, ckpt_after as u64);
        std::fs::write(&ckpt, write_snapshot(&base)).expect("write checkpoint");

        // The WAL holds the batches after the checkpoint.
        let (mut wal, _) = sketchtree_wal::Wal::open(&wal_path, 1).expect("open wal");
        wal.bump_seq_past(ckpt_after as u64);
        let mut ends = vec![sketchtree_wal::HEADER_LEN];
        for (labels, trees) in &all[ckpt_after..] {
            let payload = sketchtree_wal::encode_batch(labels, trees).expect("encode");
            wal.append(&payload).expect("append");
            ends.push(wal.size_bytes());
        }
        drop(wal);

        // Power cut: the file ends mid-anything.
        let full = std::fs::read(&wal_path).expect("read wal");
        let cut = ((full.len() as u64) * cut_ppm / 1_000_000) as usize;
        std::fs::write(&wal_path, &full[..cut]).expect("truncate wal");

        let metrics = ServerMetrics::new();
        let (st, repaired, report) = recover(
            Some(&ckpt),
            Some(&WalConfig::new(&wal_path)),
            &config(7),
            &metrics,
        )
        .expect("recovery never errors on a truncated tail");

        let cut64 = cut as u64;
        let survived = ends
            .iter()
            .filter(|&&e| e > sketchtree_wal::HEADER_LEN && e <= cut64)
            .count();
        prop_assert_eq!(report.replayed_batches as usize, survived);
        prop_assert_eq!(
            report.torn_tail,
            cut != 0 && !ends.contains(&cut64),
            "torn iff the cut missed a frame boundary (cut {})", cut
        );
        prop_assert_eq!(st.wal_seq(), (ckpt_after + survived) as u64);

        // The recovered synopsis is byte-identical to one that ingested
        // exactly the surviving acked prefix.
        let expect = reference(7, ckpt_after + survived, st.wal_seq());
        prop_assert_eq!(write_snapshot(&st), write_snapshot(&expect));

        // The repaired log continues the sequence with no gaps or reuse.
        let repaired = repaired.expect("wal configured");
        prop_assert_eq!(repaired.next_seq(), (ckpt_after + survived) as u64 + 1);
        drop(repaired);
        cleanup(&dir);
    }
}

/// Satellite regression: a garbage `<checkpoint>.tmp` from a simulated
/// mid-write crash must never become the live checkpoint — the real
/// checkpoint loads, and the stale temp file is removed.
#[test]
fn garbage_tmp_from_midwrite_crash_never_becomes_live() {
    let dir = scratch("tmp-garbage");
    let ckpt = dir.join("state.snap");
    let cfg = ServerConfig {
        checkpoint_path: Some(ckpt.clone()),
        sketch: config(3),
        ..ServerConfig::default()
    };

    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("server starts");
    for (labels, trees) in &batches() {
        let map: Vec<Label> = server
            .shared()
            .with_labels(|g| labels.iter().map(|n| g.intern(n)).collect());
        let remapped: Vec<Tree> = trees.iter().map(|t| remap(t, &map)).collect();
        server.shared().ingest_batch(&remapped);
    }
    let expected_trees = server.shared().trees_processed();
    server.shutdown().expect("clean shutdown");

    // Crash mid-checkpoint: half-written garbage under the temp name.
    let tmp = ckpt.with_extension("tmp");
    std::fs::write(&tmp, b"SKTR\x02\x00\x00\x00 torn mid-write").expect("write garbage tmp");

    let server2 = Server::start("127.0.0.1:0", cfg).expect("restart succeeds");
    assert_eq!(
        server2.shared().trees_processed(),
        expected_trees,
        "the published checkpoint, not the torn temp file, is what loads"
    );
    assert!(!tmp.exists(), "stale temp file removed at startup");
    let text = server2.metrics().render(false);
    assert!(
        text.contains("sketchtree_restore_stale_tmp_total 1"),
        "stale-tmp cleanup is counted: {text}"
    );
    server2.abort();
    cleanup(&dir);
}

/// Satellite regression: even a temp file containing a *fully valid*
/// snapshot is ignored and removed — the rename never happened, so it
/// was never published.
#[test]
fn valid_looking_tmp_is_still_not_trusted() {
    let dir = scratch("tmp-valid");
    let ckpt = dir.join("state.snap");
    let tmp = ckpt.with_extension("tmp");
    std::fs::write(&tmp, write_snapshot(&reference(3, 4, 0))).expect("write tmp");

    let metrics = ServerMetrics::new();
    let (st, _, report) =
        recover(Some(&ckpt), None, &config(3), &metrics).expect("recover");
    assert_eq!(st.trees_processed(), 0, "unpublished checkpoint data is not loaded");
    assert!(report.stale_tmp_removed);
    assert!(!report.restored_from_checkpoint);
    assert!(!tmp.exists());
    cleanup(&dir);
}

/// Satellite regression: a corrupt checkpoint no longer bricks the
/// server when a WAL is configured — it is quarantined as `*.corrupt`,
/// counted, and the state is rebuilt from the log.
#[test]
fn corrupt_checkpoint_is_quarantined_and_rebuilt_from_wal() {
    let dir = scratch("quarantine");
    let ckpt = dir.join("state.snap");
    let wal_path = dir.join("state.wal");
    let cfg = ServerConfig {
        checkpoint_path: Some(ckpt.clone()),
        wal: Some(WalConfig::new(wal_path)),
        sketch: config(5),
        ..ServerConfig::default()
    };

    // First life: every batch goes through the log; no checkpoint is
    // ever written (crash before the first checkpoint interval).
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("server starts");
    let mut client =
        sketchtree_server::Client::connect(server.addr()).expect("client connects");
    for (labels, trees) in &batches() {
        client
            .ingest_trees(labels.clone(), trees.clone())
            .expect("ingest acked");
    }
    let before = server.shared().read(write_snapshot);
    drop(client);
    server.abort();

    // An old corrupt checkpoint sits at the path (wrong bytes, right
    // magic — the nastiest case).
    std::fs::write(&ckpt, b"SKTR\x02\x00\x00\x00corrupt beyond the header").expect("write");

    let server2 = Server::start("127.0.0.1:0", cfg).expect("starts despite corrupt checkpoint");
    assert_eq!(
        server2.shared().read(write_snapshot),
        before,
        "state rebuilt from the WAL alone is bit-identical to the acked stream"
    );
    let quarantined = {
        let mut name = ckpt.as_os_str().to_os_string();
        name.push(".corrupt");
        PathBuf::from(name)
    };
    assert!(quarantined.exists(), "bad checkpoint preserved for forensics");
    assert!(!ckpt.exists(), "bad checkpoint no longer in the live position");
    let text = server2.metrics().render(false);
    assert!(
        text.contains("sketchtree_restore_corrupt_total 1"),
        "quarantine is counted: {text}"
    );
    server2.abort();
    cleanup(&dir);
}

/// Without a WAL there is nothing to rebuild from, so a corrupt
/// checkpoint stays a hard startup error (silently starting empty would
/// discard the stream).
#[test]
fn corrupt_checkpoint_without_wal_is_still_fatal() {
    let dir = scratch("fatal");
    let ckpt = dir.join("state.snap");
    std::fs::write(&ckpt, b"SKTR\x01\x00\x00\x00nope").expect("write");
    let cfg = ServerConfig {
        checkpoint_path: Some(ckpt.clone()),
        sketch: config(5),
        ..ServerConfig::default()
    };
    assert!(Server::start("127.0.0.1:0", cfg).is_err());
    assert!(ckpt.exists(), "no quarantine without a WAL — evidence stays put");
    cleanup(&dir);
}

/// End-to-end crash drill over the wire: ack batches, checkpoint
/// mid-stream, ack more, crash.  The restart must hold exactly the
/// acked stream (checkpoint + replayed tail), bit-for-bit.
#[test]
fn abort_restart_recovers_every_acked_batch() {
    let dir = scratch("e2e");
    let ckpt = dir.join("state.snap");
    let wal_path = dir.join("state.wal");
    let cfg = ServerConfig {
        checkpoint_path: Some(ckpt),
        wal: Some(WalConfig::new(wal_path.clone())),
        sketch: config(11),
        ..ServerConfig::default()
    };
    let all = batches();

    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("server starts");
    let mut client =
        sketchtree_server::Client::connect(server.addr()).expect("client connects");
    for (labels, trees) in &all[..3] {
        client.ingest_trees(labels.clone(), trees.clone()).expect("acked");
    }
    server.checkpoint().expect("explicit checkpoint");
    assert_eq!(
        std::fs::metadata(&wal_path).expect("wal exists").len(),
        sketchtree_wal::HEADER_LEN,
        "a successful checkpoint rotates the log"
    );
    for (labels, trees) in &all[3..] {
        client.ingest_trees(labels.clone(), trees.clone()).expect("acked");
    }
    let before = server.shared().read(write_snapshot);
    drop(client);
    server.abort();

    let server2 = Server::start("127.0.0.1:0", cfg.clone()).expect("restart");
    assert_eq!(
        server2.shared().read(write_snapshot),
        before,
        "recovered synopsis is bit-identical to the pre-crash acked state"
    );
    // The recovered state also matches a from-scratch reference over
    // the same batches (checkpoint restore + replay introduced no skew).
    let expect = reference(11, all.len(), server2.shared().wal_seq());
    assert_eq!(server2.shared().read(write_snapshot), write_snapshot(&expect));

    // Clean shutdown then restart: same state again, now via checkpoint
    // alone (empty log).
    server2.shutdown().expect("clean shutdown");
    let server3 = Server::start("127.0.0.1:0", cfg).expect("restart after shutdown");
    assert_eq!(server3.shared().read(write_snapshot), write_snapshot(&expect));
    server3.abort();
    cleanup(&dir);
}

/// The XML ingest opcode logs through the same WAL path as IngestTrees.
#[test]
fn xml_ingest_is_logged_and_replayed() {
    let dir = scratch("xml");
    let wal_path = dir.join("xml.wal");
    let cfg = ServerConfig {
        wal: Some(WalConfig::new(wal_path)),
        sketch: config(13),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("server starts");
    let mut client =
        sketchtree_server::Client::connect(server.addr()).expect("client connects");
    client
        .ingest_xml(&["<a><b/><c><b/></c></a>".to_string(), "<a><c/></a>".to_string()])
        .expect("xml acked");
    let before = server.shared().read(write_snapshot);
    drop(client);
    server.abort();

    let server2 = Server::start("127.0.0.1:0", cfg).expect("restart");
    assert_eq!(
        server2.shared().read(write_snapshot),
        before,
        "XML batches replay bit-identically from the log"
    );
    server2.abort();
    cleanup(&dir);
}

/// Group commit: `fsync_every = 4` issues one fsync per four appends
/// (visible in the counters), and a same-process crash still recovers
/// everything the page cache held.
#[test]
fn group_commit_batches_fsyncs() {
    let dir = scratch("group");
    let wal_path = dir.join("group.wal");
    let cfg = ServerConfig {
        wal: Some(WalConfig { path: wal_path, fsync_every: 4 }),
        sketch: config(17),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg.clone()).expect("server starts");
    let mut client =
        sketchtree_server::Client::connect(server.addr()).expect("client connects");
    let all = batches();
    for _ in 0..2 {
        for (labels, trees) in &all[..4] {
            client.ingest_trees(labels.clone(), trees.clone()).expect("acked");
        }
    }
    let text = server.metrics().render(false);
    assert!(text.contains("sketchtree_wal_appends_total 8"), "{text}");
    assert!(text.contains("sketchtree_wal_fsyncs_total 2"), "{text}");
    let before = server.shared().read(write_snapshot);
    drop(client);
    server.abort();

    let server2 = Server::start("127.0.0.1:0", cfg).expect("restart");
    assert_eq!(server2.shared().read(write_snapshot), before);
    server2.abort();
    cleanup(&dir);
}
