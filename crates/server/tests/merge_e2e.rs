//! End-to-end scale-out ingest: two servers each ingest half of a
//! DBLP-like stream, checkpoint, and their snapshots are merged into a
//! third server over the wire (`MergeSnapshot`).  With top-k disabled the
//! merged synopsis must answer every query bit-identically to a single
//! server that saw the whole stream — including when the shards intern
//! their labels in different orders.

use sketchtree_core::sketchtree::SketchTreeConfig;
use sketchtree_datagen::dblp::DblpGen;
use sketchtree_server::{Client, Server, ServerConfig};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::{Label, LabelTable, NodeId, Tree};

fn config(seed: u64) -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 5,
            virtual_streams: 31,
            // Top-k off: merge is then *byte*-identical to sequential
            // ingest, so every estimate must match to the last bit.
            topk: 0,
            seed,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

/// Rebuilds `tree` with every label pushed through `map`.
fn remap_tree(tree: &Tree, map: &mut impl FnMut(Label) -> Label) -> Tree {
    fn rec(tree: &Tree, id: NodeId, map: &mut impl FnMut(Label) -> Label) -> Tree {
        let children = tree
            .children(id)
            .iter()
            .map(|&c| rec(tree, c, map))
            .collect();
        Tree::node(map(tree.label(id)), children)
    }
    rec(tree, tree.root(), map)
}

/// Re-interns a shard's trees against a fresh label table in first-use
/// order, so each shard ships a *different* positional label table than
/// the baseline (and than the other shard) — exercising the by-name
/// reconciliation in the merge path.
fn compact_shard(trees: &[Tree], full: &LabelTable) -> (Vec<String>, Vec<Tree>) {
    let mut local = LabelTable::new();
    let remapped = trees
        .iter()
        .map(|t| remap_tree(t, &mut |l| local.intern(full.name(l))))
        .collect();
    let names = local.iter().map(|(_, n)| n.to_string()).collect();
    (names, remapped)
}

fn tmp_snap(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sketchtree-merge-e2e-{tag}-{}.bin", std::process::id()));
    p
}

/// Ingests `trees` on a throwaway server, forces a checkpoint, and
/// returns the snapshot bytes.
fn shard_snapshot(
    seed: u64,
    tag: &str,
    labels: Vec<String>,
    trees: Vec<Tree>,
) -> Vec<u8> {
    let path = tmp_snap(tag);
    std::fs::remove_file(&path).ok();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(seed),
            checkpoint_path: Some(path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("shard server starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ingest_trees(labels, trees).expect("shard ingest");
    client.snapshot().expect("shard checkpoint");
    server.shutdown().expect("clean shutdown");
    let bytes = std::fs::read(&path).expect("shard snapshot on disk");
    std::fs::remove_file(&path).ok();
    bytes
}

const QUERIES: &[&str] = &[
    "article(author)",
    "article(year)",
    "inproceedings(author)",
    "author",
    "title",
];

#[test]
fn two_server_shards_merge_to_the_single_server_baseline() {
    let seed = 23;
    let mut full_labels = LabelTable::new();
    let mut gen = DblpGen::new(99, &mut full_labels, 50);
    let trees: Vec<Tree> = (0..200).map(|_| gen.next_tree()).collect();
    let names: Vec<String> = full_labels.iter().map(|(_, n)| n.to_string()).collect();

    // Baseline: one server sees the whole stream.
    let baseline = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("baseline server starts");
    let mut base_client = Client::connect(baseline.addr()).expect("connect");
    base_client
        .ingest_trees(names, trees.clone())
        .expect("baseline ingest");
    let base_stats = base_client.stats().expect("stats");

    // Shards: each half re-interned in its own first-use order.
    let (half_a, half_b) = trees.split_at(trees.len() / 2);
    let (labels_a, trees_a) = compact_shard(half_a, &full_labels);
    let (labels_b, trees_b) = compact_shard(half_b, &full_labels);
    let snap_a = shard_snapshot(seed, "a", labels_a, trees_a);
    let snap_b = shard_snapshot(seed, "b", labels_b, trees_b);

    // Merge target: a fresh server that never saw a tree.
    let target = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("merge target starts");
    let mut client = Client::connect(target.addr()).expect("connect");
    let (trees_after_a, _) = client.merge_snapshot(&snap_a).expect("merge shard a");
    assert_eq!(trees_after_a, half_a.len() as u64);
    let (total_trees, total_patterns) = client.merge_snapshot(&snap_b).expect("merge shard b");
    assert_eq!(total_trees, base_stats.trees_processed);
    assert_eq!(total_patterns, base_stats.patterns_processed);

    // Every estimate matches the single-server baseline to the last bit.
    for q in QUERIES {
        let base = base_client.count_ordered(q).expect("baseline query");
        let merged = client.count_ordered(q).expect("merged query");
        assert_eq!(
            base.to_bits(),
            merged.to_bits(),
            "{q}: baseline {base} != merged {merged}"
        );
        let base_u = base_client.count_unordered(q).expect("baseline unordered");
        let merged_u = client.count_unordered(q).expect("merged unordered");
        assert_eq!(
            base_u.to_bits(),
            merged_u.to_bits(),
            "{q} (unordered): baseline {base_u} != merged {merged_u}"
        );
    }

    // The merge counters made it to the exposition.
    let metrics = client.metrics(false).expect("metrics");
    assert!(metrics.contains("sktp_merges_total 2"), "{metrics}");

    baseline.shutdown().expect("clean shutdown");
    target.shutdown().expect("clean shutdown");
}

/// A shard built with a different sketch seed must be refused — silently
/// adding incompatible counters would corrupt the synopsis.
#[test]
fn mismatched_shard_config_is_rejected() {
    let mut labels = LabelTable::new();
    let mut gen = DblpGen::new(7, &mut labels, 16);
    let trees: Vec<Tree> = (0..20).map(|_| gen.next_tree()).collect();
    let names: Vec<String> = labels.iter().map(|(_, n)| n.to_string()).collect();
    let snap = shard_snapshot(99, "mismatch", names, trees);

    let target = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(23), ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut client = Client::connect(target.addr()).expect("connect");
    let err = client.merge_snapshot(&snap).expect_err("seed mismatch must be refused");
    assert!(format!("{err}").contains("merge"), "{err}");

    // The refusal must leave the target untouched and alive.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.trees_processed, 0);

    // Garbage bytes are refused too, without killing the worker.
    let err = client.merge_snapshot(b"not a snapshot").expect_err("garbage refused");
    assert!(format!("{err}").contains("merge"), "{err}");
    client.ping().expect("worker survived");

    target.shutdown().expect("clean shutdown");
}
