//! The threaded TCP daemon hosting a shared synopsis.
//!
//! Architecture — plain `std::net`, no async runtime:
//!
//! - An **accept thread** hands connections to a bounded channel.
//! - A fixed pool of **worker threads** each serve one connection at a
//!   time, frame by frame.  Read timeouts double as the idle tick, so a
//!   quiet connection re-checks the shutdown flag a few times a second,
//!   and a connection idle past `idle_timeout` is closed so it cannot pin
//!   a worker forever (the client reconnects on its next request).
//! - Ingest follows the concurrency contract of
//!   [`SharedSketchTree`]:
//!   XML parsing happens against a connection-local label table with *no*
//!   lock held, label interning takes one short exclusive lock, and the
//!   sketch updates go through `ingest_batch` (parallel enumeration under
//!   the shared lock, partition-sharded insertion under one exclusive
//!   lock per bounded chunk — so checkpoints and queries interleave with
//!   large batches).  Queries only ever take the shared lock, so queries
//!   never block queries.
//! - An optional **checkpoint thread** persists the synopsis through the
//!   snapshot layer at a fixed interval; checkpoints are atomic *and
//!   durable* (temp file + `sync_all` + rename + parent-dir fsync).  The
//!   server also checkpoints on shutdown and recovers on start, so a
//!   restart resumes the stream where it left off.
//! - An optional **write-ahead log** ([`crate::durability`]) makes the
//!   gap between checkpoints crash-safe: each ingest batch is appended
//!   (group-commit fsync per [`WalConfig::fsync_every`]) *before* the
//!   ack is written, recovery replays the tail past the checkpoint's
//!   recorded cursor, and every successful checkpoint rotates the log.

use crate::durability::{self, WalConfig};
use crate::http::MetricsHttp;
use crate::metrics::{ConnectionGuard, ServerMetrics};
use crate::subs::Subscriptions;
use crate::wire::{
    decode_ingest_trees, frame_bytes, read_frame_patient, Frame, Request, Response, Stats,
    SubscribeMode, WireError, DEFAULT_MAX_FRAME, HEADER_LEN, INGEST_TREES_KIND,
};
use sketchtree_core::concurrent::SharedSketchTree;
use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
use sketchtree_wal::Wal;
use sketchtree_standing::{QueryCache, QueryMode, QuerySpec};
use sketchtree_tree::{Label, LabelTable, NodeId, Tree, TreeBuilder};
use sketchtree_xml::XmlTreeBuilder;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Largest accepted frame payload, bytes.
    pub max_frame: u32,
    /// Per-read socket timeout; also the idle/shutdown poll tick.
    pub read_timeout: Duration,
    /// Close a connection that has sent no complete frame for this long.
    /// Workers serve one connection at a time, so without this bound
    /// `workers` quiet-but-open clients would starve everyone else; a
    /// well-behaved client reconnects transparently on its next request.
    pub idle_timeout: Duration,
    /// Where to persist checkpoints; `None` disables persistence.
    pub checkpoint_path: Option<PathBuf>,
    /// Periodic checkpoint interval; `None` checkpoints only on shutdown
    /// or explicit `Snapshot` requests.
    pub checkpoint_interval: Option<Duration>,
    /// Synopsis configuration for a fresh start.  Ignored when a
    /// checkpoint exists at `checkpoint_path` — the restored synopsis
    /// keeps the configuration it was built with, since sketch state is
    /// meaningless under a different geometry or seed.
    pub sketch: SketchTreeConfig,
    /// Bind address for the HTTP metrics endpoint (`/metrics`,
    /// `/metrics.json`, `/healthz`); `None` disables it.  Metrics are
    /// always collected and always available over the SKTP `Metrics`
    /// opcode — this only controls the scrape listener.
    pub metrics_addr: Option<SocketAddr>,
    /// Worker threads for the parallel `IngestTrees` pipeline:
    /// enumeration fan-out and partition-sharded sketch insertion.
    /// `0` means the default — `SKETCHTREE_INGEST_THREADS` when set,
    /// otherwise the machine's available parallelism.  The synopsis is
    /// bit-identical at every setting.
    pub ingest_threads: usize,
    /// Outbound `EstimateUpdate` queue depth per subscribed connection.
    /// A subscriber whose queue is full when a batch broadcasts is
    /// evicted rather than waited for, so one stalled dashboard cannot
    /// wedge ingest (see `docs/wire-protocol.md` on push delivery).
    pub push_queue: usize,
    /// Cap on live subscriptions per connection; `Subscribe` past the cap
    /// answers an error frame.
    pub max_subscriptions_per_conn: usize,
    /// Write-ahead log of ingest batches; `None` disables it.  With a
    /// log configured every ingest batch is appended (and group-commit
    /// fsynced) *before* it is acked, startup replays the tail past the
    /// last checkpoint, and each successful checkpoint rotates the log —
    /// so a crash loses nothing durably acked.  See [`crate::durability`].
    pub wal: Option<WalConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(60),
            checkpoint_path: None,
            checkpoint_interval: None,
            sketch: SketchTreeConfig::default(),
            metrics_addr: None,
            ingest_threads: 0,
            push_queue: 64,
            max_subscriptions_per_conn: 1024,
            wal: None,
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// all threads.
pub struct Server {
    addr: SocketAddr,
    shared: SharedSketchTree,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    checkpoint: Arc<Checkpoint>,
    metrics: Arc<ServerMetrics>,
    metrics_http: Option<MetricsHttp>,
    subs: Arc<Subscriptions>,
}

/// Checkpoint target shared by the workers, the periodic thread and the
/// server handle.  The mutex serializes entire checkpoints (state read,
/// temp-file write, rename) — concurrent callers share one temp path, and
/// unserialized interleaving could publish a partially-written or stale
/// snapshot.
struct Checkpoint {
    path: Option<PathBuf>,
    lock: Mutex<()>,
    /// The WAL commit lock, shared with the ingest path.  A checkpoint
    /// holds it across the state read so it only ever observes
    /// batch-boundary state (never half of a chunked `ingest_batch`,
    /// which replay would then double-count), and across the rotation so
    /// no append lands between snapshot and truncate.
    wal: Option<Arc<Mutex<Wal>>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving.
    ///
    /// If `config.checkpoint_path` names an existing snapshot the synopsis
    /// is restored from it; otherwise a fresh synopsis is built from
    /// `config.sketch`.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let metrics = ServerMetrics::new();
        // Recovery state machine: clean stale temp files, restore (or
        // quarantine) the checkpoint, repair the WAL's torn tail, replay
        // frames past the checkpoint's cursor.  See crate::durability.
        let (mut st, wal, _report) = durability::recover(
            config.checkpoint_path.as_deref(),
            config.wal.as_ref(),
            &config.sketch,
            &metrics,
        )?;
        let wal = wal.map(|w| Arc::new(Mutex::new(w)));
        st.attach_metrics(metrics.core.clone());
        let ingest_opts = sketchtree_core::IngestOptions {
            threads: match config.ingest_threads {
                0 => sketchtree_core::default_ingest_threads(),
                n => n,
            },
            ..sketchtree_core::IngestOptions::default()
        };
        let shared = SharedSketchTree::with_options(st, ingest_opts);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let checkpoint = Arc::new(Checkpoint {
            path: config.checkpoint_path.clone(),
            lock: Mutex::new(()),
            wal: wal.clone(),
        });
        let subs = Arc::new(Subscriptions::new(
            metrics.clone(),
            config.max_subscriptions_per_conn,
        ));
        // Standing-query push: re-evaluate compiled plans and fan out
        // EstimateUpdate frames once per ingest batch or merge, still
        // under the read lock that observed it — so every pushed value
        // belongs to exactly the epoch it reports.
        {
            let subs = subs.clone();
            shared.add_batch_hook(Arc::new(move |st: &SketchTree| subs.broadcast(st)));
        }
        let ctx = Arc::new(Ctx {
            shared: shared.clone(),
            shutdown: shutdown.clone(),
            addr,
            max_frame: config.max_frame,
            idle_timeout: config.idle_timeout,
            checkpoint: checkpoint.clone(),
            metrics: metrics.clone(),
            subs: subs.clone(),
            cache: QueryCache::default(),
            next_conn: AtomicU64::new(0),
            push_queue: config.push_queue.max(1),
            wal,
        });
        for _ in 0..workers {
            let rx = rx.clone();
            let ctx = ctx.clone();
            threads.push(std::thread::spawn(move || worker_loop(&rx, &ctx)));
        }

        let read_timeout = config.read_timeout;
        {
            let shutdown = shutdown.clone();
            threads.push(std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_read_timeout(Some(read_timeout));
                    let _ = stream.set_nodelay(true);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // tx drops here; idle workers see a closed channel and exit.
            }));
        }

        if let (Some(interval), Some(_)) = (config.checkpoint_interval, &config.checkpoint_path) {
            let ctx = ctx.clone();
            threads.push(std::thread::spawn(move || {
                let tick = Duration::from_millis(50);
                let mut last = Instant::now();
                while !ctx.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    if last.elapsed() >= interval {
                        let _ = checkpoint_now(&ctx.shared, &ctx.checkpoint, &ctx.metrics);
                        last = Instant::now();
                    }
                }
            }));
        }

        let metrics_http = match config.metrics_addr {
            Some(maddr) => Some(MetricsHttp::start(maddr, metrics.clone(), shared.clone())?),
            None => None,
        };

        Ok(Server {
            addr,
            shared,
            shutdown,
            threads,
            checkpoint,
            metrics,
            metrics_http,
            subs,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared synopsis this server fronts (same handle the workers
    /// use — in-process callers may ingest or query directly).
    pub fn shared(&self) -> &SharedSketchTree {
        &self.shared
    }

    /// Writes a checkpoint now; returns the snapshot size in bytes.
    pub fn checkpoint(&self) -> io::Result<u64> {
        checkpoint_now(&self.shared, &self.checkpoint, &self.metrics)
    }

    /// The server's metric set (same instance the workers update).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The standing-query subscription table (same instance the workers
    /// and the batch hook use — for tests and in-process introspection).
    pub fn subscriptions(&self) -> &Subscriptions {
        &self.subs
    }

    /// The bound address of the HTTP metrics endpoint, when enabled
    /// (resolved port when `metrics_addr` asked for port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(MetricsHttp::addr)
    }

    /// Blocks until a shutdown is requested (via [`Server::shutdown`],
    /// drop, or a `Shutdown` frame from any client).
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stops accepting, drains workers, writes a final checkpoint.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop();
        if self.checkpoint.path.is_some() {
            checkpoint_now(&self.shared, &self.checkpoint, &self.metrics)?;
        }
        Ok(())
    }

    /// Stops all threads *without* the shutdown checkpoint, simulating a
    /// crash for durability tests: a subsequent restart sees exactly
    /// what a power cut would have left — the last published checkpoint
    /// plus whatever the write-ahead log holds.
    pub fn abort(mut self) {
        self.stop();
        // Drop sees an already-stopped server (threads drained) and
        // skips its checkpoint, so nothing gets persisted past here.
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a self-connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(http) = &mut self.metrics_http {
            http.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop();
            let _ = checkpoint_now(&self.shared, &self.checkpoint, &self.metrics);
        }
    }
}

/// State shared by all worker threads.
struct Ctx {
    shared: SharedSketchTree,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    max_frame: u32,
    idle_timeout: Duration,
    checkpoint: Arc<Checkpoint>,
    metrics: Arc<ServerMetrics>,
    subs: Arc<Subscriptions>,
    /// Epoch-keyed memo for ad-hoc `Count`/`Expr` requests: repeated
    /// dashboard queries between batches are one hash lookup.
    cache: QueryCache,
    /// Connection id allocator — subscription ownership is keyed on it.
    next_conn: AtomicU64,
    push_queue: usize,
    /// Write-ahead log + commit lock; `None` when durability is off.
    /// Held across append + apply so the ack order matches the log order
    /// and checkpoints only observe batch boundaries.
    wal: Option<Arc<Mutex<Wal>>>,
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        // Hold the receiver lock only for the dequeue, not the whole
        // connection.
        // lint:allow(L7, reason = "handoff by design: an idle worker must block in recv(), and the mutex is held for exactly that dequeue — connection handling happens after release")
        let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match conn {
            Ok(stream) => serve_connection(stream, ctx),
            Err(_) => break, // accept loop gone
        }
    }
}

/// The lazily-started push side of one connection: a bounded queue whose
/// receiver is drained by a dedicated thread writing `EstimateUpdate`
/// frames through the connection's shared writer.
struct Pusher {
    tx: SyncSender<Response>,
    thread: JoinHandle<()>,
}

impl Pusher {
    /// Spawns the drain thread.  It exits when every sender is gone —
    /// the connection handler's handle plus the subscription table's
    /// clones, all dropped during teardown — or when a write fails
    /// (peer gone or write timeout), after which broadcasts see a
    /// disconnected queue and evict the subscriptions.
    fn spawn(writer: Arc<Mutex<TcpStream>>, ctx: &Ctx) -> Pusher {
        let (tx, rx) = sync_channel::<Response>(ctx.push_queue);
        let metrics = ctx.metrics.clone();
        let thread = std::thread::spawn(move || {
            while let Ok(update) = rx.recv() {
                // Assemble the whole frame before taking the writer
                // mutex; the held-lock section is one write.
                let payload = update.encode();
                let Ok(frame) = frame_bytes(update.kind(), &payload) else { return };
                let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                // lint:allow(L4, L7, reason = "the socket write must serialize under the per-connection writer mutex for frame atomicity with the response path; assembly already happened outside it")
                let wrote = w.write_all(&frame).and_then(|()| w.flush());
                drop(w);
                if wrote.is_err() {
                    return;
                }
                metrics.frames_out.inc();
                metrics.bytes_out.add(frame.len() as u64);
            }
        });
        Pusher { tx, thread }
    }
}

fn serve_connection(stream: TcpStream, ctx: &Ctx) {
    let _guard = ConnectionGuard::open(&ctx.metrics);
    let conn = ctx.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
    // Reads stay on the original stream; all writes (responses and
    // pushed updates alike) go through a cloned handle behind a mutex so
    // the response path and the pusher thread can never interleave
    // bytes of two frames.  The write timeout bounds how long a wedged
    // peer can hold that mutex.
    let writer = match stream.try_clone() {
        Ok(w) => {
            let _ = w.set_write_timeout(Some(ctx.idle_timeout));
            Arc::new(Mutex::new(w))
        }
        Err(_) => return,
    };
    let mut reader = stream;
    let mut push: Option<Pusher> = None;
    let mut last_activity = Instant::now();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Patience = `idle_timeout`: a peer mid-frame may stall for up to
        // one idle interval between bytes without being disconnected, so
        // slow ingesters trickling a large batch see backpressure (their
        // writes just take longer) rather than a reset.  A wedged peer
        // still frees the worker after `idle_timeout` without progress.
        match read_frame_patient(&mut reader, ctx.max_frame, ctx.idle_timeout) {
            Ok(Frame::Eof) => break,
            Ok(Frame::Idle) => {
                // A subscribed connection is *expected* to go quiet —
                // it reads pushes instead of sending requests — so the
                // idle close only applies while nothing is subscribed.
                if last_activity.elapsed() >= ctx.idle_timeout
                    && !ctx.subs.connection_active(conn)
                {
                    ctx.metrics.idle_closes.inc();
                    break; // free the worker for a queued connection
                }
                continue;
            }
            Ok(Frame::Msg { kind, payload }) => {
                last_activity = Instant::now();
                let started = Instant::now();
                ctx.metrics.frames_in.inc();
                ctx.metrics.bytes_in.add((HEADER_LEN + payload.len()) as u64);
                // Frame boundaries are intact even when the payload is
                // malformed, so payload errors answer and keep the
                // connection; only header-level failures desynchronize.
                // The ingest hot path decodes zero-copy: label names stay
                // borrowed from the read buffer all the way into the
                // global intern call, skipping one `String` allocation per
                // label per batch.  Every other kind takes the owned
                // `Request` route.
                let resp = if kind == INGEST_TREES_KIND {
                    match decode_ingest_trees(&payload) {
                        Ok((labels, trees)) => ingest_batch_request(ctx, &labels, &trees),
                        Err(e) => Response::Error(format!("bad request: {e}")),
                    }
                } else {
                    match Request::decode(kind, &payload) {
                        // Subscription frames need the connection's
                        // identity and push queue, so they resolve here
                        // rather than in the stateless handle_request.
                        Ok(Request::Subscribe { mode, query }) => {
                            handle_subscribe(ctx, conn, mode, &query, &writer, &mut push)
                        }
                        Ok(Request::Unsubscribe { id }) => {
                            if ctx.subs.unsubscribe(conn, id) {
                                Response::Unsubscribed
                            } else {
                                Response::Error(format!("unknown subscription id {id}"))
                            }
                        }
                        Ok(req) => handle_request(req, ctx),
                        Err(e) => Response::Error(format!("bad request: {e}")),
                    }
                };
                if matches!(resp, Response::Error(_)) {
                    ctx.metrics.error_responses.inc();
                }
                let done = matches!(resp, Response::ShuttingDown);
                let sent = write_response(&writer, &resp, ctx);
                ctx.metrics.observe_request(kind, started.elapsed());
                if !sent || done {
                    break;
                }
            }
            Err(e) => {
                let msg = match &e {
                    WireError::Io(_) => None, // peer is gone; nothing to tell it
                    other => Some(format!("protocol error: {other}")),
                };
                if let Some(msg) = msg {
                    ctx.metrics.error_responses.inc();
                    write_response(&writer, &Response::Error(msg), ctx);
                }
                break;
            }
        }
    }
    // Teardown, on every exit path: reap this connection's subscriptions
    // (dropping the table's sender clones), then drop our own sender so
    // the pusher's receive loop ends, then join it.  The join is bounded
    // because pusher writes carry a write timeout.
    ctx.subs.drop_connection(conn);
    if let Some(p) = push.take() {
        drop(p.tx);
        let _ = p.thread.join();
    }
}

/// Resolves a `Subscribe` frame: validate the query, make sure this
/// connection has a pusher, register the subscription, and answer with
/// the id and the epoch the first update will supersede.
fn handle_subscribe(
    ctx: &Ctx,
    conn: u64,
    mode: SubscribeMode,
    query: &str,
    writer: &Arc<Mutex<TcpStream>>,
    push: &mut Option<Pusher>,
) -> Response {
    let mode = match mode {
        SubscribeMode::Ordered => QueryMode::Ordered,
        SubscribeMode::Unordered => QueryMode::Unordered,
        SubscribeMode::Expr => QueryMode::Expr,
    };
    let spec = match QuerySpec::parse(mode, query) {
        Ok(spec) => spec,
        Err(e) => return Response::Error(format!("subscribe: {e}")),
    };
    let tx = match push {
        Some(p) => p.tx.clone(),
        None => {
            let p = Pusher::spawn(writer.clone(), ctx);
            let tx = p.tx.clone();
            *push = Some(p);
            tx
        }
    };
    match ctx.subs.subscribe(conn, spec, tx) {
        Ok(id) => Response::Subscribed { id, epoch: ctx.shared.epoch() },
        Err(e) => Response::Error(format!("subscribe: {e}")),
    }
}

/// Writes one response frame through the connection's shared writer,
/// counting the frame and its bytes (header included) on success.
/// Returns `false` when the write failed and the connection should close.
fn write_response(writer: &Mutex<TcpStream>, resp: &Response, ctx: &Ctx) -> bool {
    // Frame assembly stays outside the writer mutex — only the socket
    // write itself needs to serialize against the pusher thread.
    let payload = resp.encode();
    let Ok(frame) = frame_bytes(resp.kind(), &payload) else { return false };
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    // lint:allow(L4, L7, reason = "the socket write must serialize under the per-connection writer mutex for frame atomicity with the pusher thread; assembly already happened outside it")
    let wrote = stream.write_all(&frame).and_then(|()| stream.flush());
    drop(stream);
    if wrote.is_err() {
        return false;
    }
    ctx.metrics.frames_out.inc();
    ctx.metrics.bytes_out.add(frame.len() as u64);
    true
}

fn handle_request(req: Request, ctx: &Ctx) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::IngestXml(docs) => match parse_documents(&docs) {
            Ok((local, trees)) => ingest_parsed(ctx, &local, trees),
            Err(e) => Response::Error(e),
        },
        Request::IngestTrees { labels, trees } => {
            let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
            ingest_batch_request(ctx, &labels, &trees)
        }
        Request::Count { unordered, pattern } => {
            let mode = if unordered { QueryMode::Unordered } else { QueryMode::Ordered };
            let result = match QuerySpec::parse(mode, &pattern) {
                Ok(spec) => cached_estimate(ctx, &spec),
                // Unparseable patterns still go through the synopsis so
                // the core query/error counters see them; the core parser
                // produces the same `query parse error: …` text.
                Err(_) => ctx.shared.read(|st| {
                    if unordered {
                        st.count_unordered(&pattern).map_err(|e| e.to_string())
                    } else {
                        st.count_ordered(&pattern).map_err(|e| e.to_string())
                    }
                }),
            };
            match result {
                Ok(v) => Response::Estimate(v),
                Err(e) => Response::Error(format!("{pattern}: {e}")),
            }
        }
        Request::Expr(text) => match QuerySpec::parse(QueryMode::Expr, &text) {
            Ok(spec) => match cached_estimate(ctx, &spec) {
                Ok(v) => Response::Estimate(v),
                Err(e) => Response::Error(format!("estimate: {e}")),
            },
            Err(e) => Response::Error(format!("expression: {e}")),
        },
        Request::Stats => ctx.shared.read(|s| {
            let c = s.config();
            Response::Stats(Stats {
                trees_processed: s.trees_processed(),
                patterns_processed: s.patterns_processed(),
                labels: s.labels().len() as u64,
                memory_bytes: s.memory_bytes() as u64,
                max_pattern_edges: c.max_pattern_edges as u64,
                s1: c.synopsis.s1 as u64,
                s2: c.synopsis.s2 as u64,
                virtual_streams: c.synopsis.virtual_streams as u64,
                topk: c.synopsis.topk as u64,
            })
        }),
        Request::HeavyHitters { limit } => Response::HeavyHitters(
            ctx.shared
                .read(|s| s.tracked_heavy_hitters())
                .into_iter()
                .take(limit as usize)
                .collect(),
        ),
        Request::Snapshot => match checkpoint_now(&ctx.shared, &ctx.checkpoint, &ctx.metrics) {
            Ok(bytes) => Response::SnapshotDone { bytes },
            Err(e) => Response::Error(format!("checkpoint: {e}")),
        },
        Request::MergeSnapshot(bytes) => {
            match read_snapshot(&bytes) {
                Ok(shard) => match ctx.shared.merge(&shard) {
                    Ok(()) => {
                        ctx.metrics.merges.inc();
                        ctx.metrics.merge_bytes.add(bytes.len() as u64);
                        Response::MergeDone {
                            total_trees: ctx.shared.trees_processed(),
                            total_patterns: ctx.shared.patterns_processed(),
                        }
                    }
                    Err(e) => Response::Error(format!("merge: {e}")),
                },
                Err(e) => Response::Error(format!("merge: {e}")),
            }
        }
        Request::Metrics { json } => {
            ctx.metrics.refresh_health(&ctx.shared);
            Response::Metrics(ctx.metrics.render(json))
        }
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(ctx.addr);
            Response::ShuttingDown
        }
        // Subscription frames carry connection identity and are resolved
        // in the connection loop before this dispatcher is reached.
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => {
            Response::Error("subscription frames are handled per connection".into())
        }
    }
}

/// Answers an ad-hoc `Count`/`Expr` through the epoch-keyed cache.  The
/// epoch read, the lookup, the computation and the insert all happen
/// inside one shared-read scope, so a concurrent ingest cannot slip a
/// stale value in under a newer epoch.  Only successes are cached —
/// errors are cheap to rediscover and may heal as the stream evolves.
fn cached_estimate(ctx: &Ctx, spec: &QuerySpec) -> Result<f64, String> {
    let key = spec.key();
    ctx.shared.read(|st| {
        let epoch = st.epoch();
        if let Some(v) = ctx.cache.lookup(&key, epoch) {
            ctx.metrics.cache_hits.inc();
            return Ok(v);
        }
        ctx.metrics.cache_misses.inc();
        let computed = match spec.mode() {
            QueryMode::Ordered => st.count_ordered(spec.text()).map_err(|e| e.to_string()),
            QueryMode::Unordered => st.count_unordered(spec.text()).map_err(|e| e.to_string()),
            QueryMode::Expr => {
                // lint:allow(L1, reason = "QuerySpec::parse always stores the parsed expression for Expr specs")
                let expr = spec.expr().expect("expr specs carry their parse");
                st.estimate(expr).map_err(|e| e.to_string())
            }
        };
        if let Ok(v) = computed {
            ctx.cache.insert(key.clone(), epoch, v);
        }
        computed
    })
}

/// Parses a document batch against a *local* label table — no lock held.
fn parse_documents(docs: &[String]) -> Result<(LabelTable, Vec<Tree>), String> {
    let mut local = LabelTable::new();
    let mut builder = XmlTreeBuilder::default();
    let mut trees = Vec::with_capacity(docs.len());
    for (i, doc) in docs.iter().enumerate() {
        let tree = builder
            .parse_document(doc, &mut local)
            .map_err(|e| format!("document {i}: {e}"))?;
        trees.push(tree);
    }
    Ok((local, trees))
}

/// Interns the batch's labels into the shared table (one short exclusive
/// lock), remaps the trees lock-free, then ingests the whole batch.
/// With a WAL configured, the batch detours through the log-before-ack
/// path, carrying the connection-local label names so replay re-interns
/// them in the same order.
fn ingest_parsed(ctx: &Ctx, local: &LabelTable, trees: Vec<Tree>) -> Response {
    if ctx.wal.is_some() {
        let names: Vec<&str> = (0..local.len() as u32).map(|i| local.name(Label(i))).collect();
        return ingest_batch_request(ctx, &names, &trees);
    }
    let map: Vec<Label> = ctx.shared.with_labels(|global| {
        (0..local.len() as u32)
            .map(|i| global.intern(local.name(Label(i))))
            .collect()
    });
    ingest_remapped(ctx, &map, &trees)
}

/// Ingest entry point for a batch expressed as (batch-local label names,
/// trees indexing them positionally) — the `IngestTrees` wire shape.
///
/// Node labels index `labels` *positionally*, and duplicate names are
/// legal on the wire — so the intern map must be built per index, not
/// through a deduping `LabelTable` (which would shift every index after
/// a duplicate).
fn ingest_batch_request(ctx: &Ctx, labels: &[&str], trees: &[Tree]) -> Response {
    if let Some(wal) = &ctx.wal {
        return ingest_through_wal(ctx, wal, labels, trees);
    }
    let map: Vec<Label> = ctx
        .shared
        .with_labels(|global| labels.iter().map(|name| global.intern(name)).collect());
    ingest_remapped(ctx, &map, trees)
}

/// Log-before-ack: append the batch to the WAL (group-commit fsync per
/// config), then apply it, then advance the durability cursor — all
/// under the WAL commit lock, so the ack order equals the log order and
/// a checkpoint can never capture half a batch.  If the append fails the
/// batch is *not* applied and the client gets an error: an unlogged
/// batch must never be acked.
fn ingest_through_wal(ctx: &Ctx, wal: &Mutex<Wal>, labels: &[&str], trees: &[Tree]) -> Response {
    let payload = match sketchtree_wal::encode_batch(labels, trees) {
        Ok(p) => p,
        Err(e) => return Response::Error(format!("wal encode: {e}")),
    };
    let mut guard = wal.lock().unwrap_or_else(|e| e.into_inner());
    let started = Instant::now();
    // lint:allow(L4, L7, reason = "log-before-ack by design: the WAL mutex is the commit lock, and the append must complete under it so acks follow durable log order; queries never touch this lock")
    let appended = match guard.append(&payload) {
        Ok(a) => a,
        Err(e) => return Response::Error(format!("wal append: {e}")),
    };
    ctx.metrics.wal_appends.inc();
    ctx.metrics.wal_bytes.add(appended.bytes);
    if appended.synced {
        ctx.metrics.wal_fsyncs.inc();
        ctx.metrics.wal_fsync_seconds.observe_duration(started.elapsed());
    }
    ctx.metrics.wal_size.set(guard.size_bytes() as f64);
    let map: Vec<Label> = ctx
        .shared
        .with_labels(|global| labels.iter().map(|name| global.intern(name)).collect());
    let resp = ingest_remapped(ctx, &map, trees);
    // Only now is the batch both logged and fully applied; a checkpoint
    // taken before this line replays the frame, one after skips it.
    ctx.shared.set_wal_seq(appended.seq);
    resp
}

/// Remaps every tree's labels through `map` (batch index → global label),
/// then ingests the whole batch.
fn ingest_remapped(ctx: &Ctx, map: &[Label], trees: &[Tree]) -> Response {
    let remapped: Vec<Tree> = trees.iter().map(|t| remap_tree(t, map)).collect();
    let (batch_trees, batch_patterns) = ctx.shared.ingest_batch(&remapped);
    Response::Ingested {
        trees: batch_trees,
        patterns: batch_patterns,
        total_trees: ctx.shared.trees_processed(),
        total_patterns: ctx.shared.patterns_processed(),
    }
}

/// Rebuilds `tree` with every label translated through `map`.  Shared
/// with [`crate::durability`] so WAL replay remaps exactly as the
/// serving path does.
pub(crate) fn remap_tree(tree: &Tree, map: &[Label]) -> Tree {
    fn go(tree: &Tree, id: NodeId, map: &[Label], b: &mut TreeBuilder) {
        // lint:allow(L1, reason = "map has one entry per local label and tree was parsed against that same local table")
        b.open(map[tree.label(id).0 as usize])
            // lint:allow(L1, reason = "a preorder walk opens before it closes, so nesting is always valid")
            .expect("preorder rebuild cannot misnest");
        for &child in tree.children(id) {
            go(tree, child, map, b);
        }
        // lint:allow(L1, reason = "close() pairs with the open() above in the same call")
        b.close().expect("preorder rebuild cannot misnest");
    }
    let mut b = TreeBuilder::new();
    go(tree, tree.root(), map, &mut b);
    // lint:allow(L1, reason = "the recursion closes every node it opens, so the builder is complete")
    b.finish().expect("rebuilt tree is complete")
}

/// Atomic, durable checkpoint: snapshot under the shared lock, write +
/// `sync_all` a temp file beside the target, rename into place, fsync
/// the parent directory, then rotate the WAL.  Serialized end to end by
/// `ck.lock` so a periodic checkpoint and a client `Snapshot` request can
/// never interleave on the temp file or publish out of order.
fn checkpoint_now(
    shared: &SharedSketchTree,
    ck: &Checkpoint,
    metrics: &ServerMetrics,
) -> io::Result<u64> {
    let started = Instant::now();
    let result = checkpoint_inner(shared, ck, metrics);
    match &result {
        Ok(bytes) => {
            metrics.checkpoints.inc();
            metrics.checkpoint_seconds.observe_duration(started.elapsed());
            metrics.checkpoint_bytes.set(*bytes as f64);
        }
        // "No path configured" is a configuration state, not a failed
        // write — the shutdown path probes unconditionally.
        Err(e) if e.kind() != io::ErrorKind::Unsupported => {
            metrics.checkpoint_errors.inc();
        }
        Err(_) => {}
    }
    result
}

fn checkpoint_inner(
    shared: &SharedSketchTree,
    ck: &Checkpoint,
    metrics: &ServerMetrics,
) -> io::Result<u64> {
    let Some(path) = &ck.path else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "no checkpoint path configured",
        ));
    };
    let _guard = ck.lock.lock().unwrap_or_else(|e| e.into_inner());
    // Take the WAL commit lock (lock order: ck.lock → wal → synopsis
    // read, matching the ingest path's wal → synopsis) so the snapshot
    // observes a batch boundary and the rotation below cannot race an
    // append that the snapshot didn't capture.
    let mut wal_guard = ck
        .wal
        .as_ref()
        .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()));
    let bytes = shared.read(write_snapshot);
    let tmp = path.with_extension("tmp");
    {
        // Write + fsync the temp file *before* the rename: rename is
        // atomic in the namespace but says nothing about the data —
        // without sync_all a crash can publish a name pointing at
        // unwritten blocks (the bug this module's tests pin).
        // lint:allow(L4, L7, reason = "the checkpoint mutex exists precisely to serialize this I/O; it is never taken on a query path")
        let mut f = std::fs::File::create(&tmp)?;
        // lint:allow(L4, L7, reason = "the checkpoint mutex exists precisely to serialize this I/O; it is never taken on a query path")
        f.write_all(&bytes)?;
        // lint:allow(L4, L7, reason = "durability requires the fsync inside the checkpoint critical section; the mutex is never taken on a query path")
        f.sync_all()?;
    }
    // lint:allow(L4, L7, reason = "the checkpoint mutex exists precisely to serialize this I/O; it is never taken on a query path")
    std::fs::rename(&tmp, path)?;
    // The rename itself is only durable once the directory entry is.
    // lint:allow(L4, L7, reason = "the directory fsync must precede the WAL rotation below, so it belongs inside the same critical section; the mutex is never taken on a query path")
    sketchtree_wal::fsync_parent_dir(path)?;
    if let Some(wal) = wal_guard.as_deref_mut() {
        // Every logged batch the snapshot covers is now durably
        // published; the log can rotate.  Sequence numbers keep
        // counting up, so the snapshot's cursor stays unambiguous.
        wal.truncate_all()?;
        metrics.wal_truncations.inc();
        metrics.wal_size.set(wal.size_bytes() as f64);
    }
    Ok(bytes.len() as u64)
}
