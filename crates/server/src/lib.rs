//! Network service for SketchTree: streaming ingest and online queries.
//!
//! The paper's synopsis is an in-process data structure; this crate turns
//! it into a long-running daemon so producers can stream labeled trees
//! from other processes and analysts can query counts while the stream is
//! still flowing.  Three layers:
//!
//! - [`wire`] — the `SKTP` framed binary protocol (versioned,
//!   length-prefixed, little-endian; same hand-rolled style as the
//!   snapshot format — no serialization dependencies).
//! - [`server`] — a threaded TCP daemon over `std::net`: an accept loop
//!   feeding a bounded worker pool, ingest that parses and enumerates
//!   outside the synopsis lock, periodic checkpointing through the
//!   snapshot layer, and snapshot-on-shutdown / restore-on-start.
//! - [`durability`] — crash safety: a write-ahead batch log
//!   (log-before-ack, group-commit fsync) plus the recover-on-start
//!   state machine that restores the checkpoint and replays the log
//!   tail, so a crash loses nothing durably acked (see `DESIGN.md` §10).
//! - [`client`] — a blocking client with reconnect-on-error and capped
//!   exponential backoff.
//! - [`subs`] — standing-query subscription dispatch: a per-server table
//!   bridging the transport-agnostic
//!   [`sketchtree_standing::QueryRegistry`] to per-connection bounded
//!   push queues, broadcast once per ingest batch from the synopsis'
//!   batch hook (with slow-subscriber eviction so a stalled reader can
//!   never wedge ingest).
//! - [`metrics`] — server instrumentation: per-opcode latency histograms,
//!   connection/byte counters, checkpoint timings, and scrape-time
//!   sketch-health gauges.  Exposed over the SKTP `Metrics` opcode and,
//!   when [`ServerConfig::metrics_addr`] is set, an HTTP `/metrics` +
//!   `/healthz` endpoint (see `docs/observability.md`).
//!
//! No async runtime: connection counts here are small (a few producers, a
//! few analysts), so a thread per in-flight connection beats dragging in
//! an executor.  Concurrency control stays where the library put it —
//! [`sketchtree_core::concurrent::SharedSketchTree`] — so queries run
//! under the shared lock and never block each other.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod durability;
mod http;
pub mod metrics;
pub mod server;
pub mod subs;
pub mod wire;

pub use client::{Client, ClientError, Update};
pub use durability::{RecoveryReport, WalConfig};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig};
pub use subs::Subscriptions;
pub use wire::SubscribeMode;
