//! The `SKTP` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the socket is one frame:
//!
//! ```text
//! +--------+---------+------+-------------+------------------+
//! | "SKTP" | version | kind | payload_len | payload          |
//! | 4 B    | u32 LE  | u8   | u32 LE      | payload_len B    |
//! +--------+---------+------+-------------+------------------+
//! ```
//!
//! Request kinds occupy `0x01..=0x7F`, response kinds `0x80..=0xFF`, so a
//! captured stream is self-describing.  Payloads use the same hand-rolled
//! little-endian encoding style as the snapshot format (`SKTR`): `u32`
//! counts, `u32`-length-prefixed UTF-8 strings, no varints, no
//! serialization dependencies.  Integers inside payloads are bounded on
//! decode so a hostile frame cannot force a huge allocation; the frame
//! itself is bounded by the reader's `max_frame`.
//!
//! Trees travel with a *batch-local* label table: each `IngestTrees`
//! frame carries its label names once, and node labels are indices into
//! that table.  The server interns the names into the synopsis' global
//! table on receipt, so producers never need to agree on label ids.

use sketchtree_tree::{Label, Tree, TreeBuilder};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Frame magic, first four bytes of every message.
pub const MAGIC: &[u8; 4] = b"SKTP";
/// Protocol version understood by this build.
pub const VERSION: u32 = 1;
/// Frame header length: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 4;

/// Widening conversion for wire lengths and counts: `usize` is at least
/// 32 bits on every target this workspace supports.
fn widen(n: u32) -> usize {
    // lint:allow(L2, reason = "u32 -> usize is widening on all supported targets")
    n as usize
}
/// Default cap on a single frame's payload (32 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 32 << 20;

// Request kinds.
const K_PING: u8 = 0x01;
const K_INGEST_XML: u8 = 0x02;
const K_INGEST_TREES: u8 = 0x03;
const K_COUNT: u8 = 0x04;
const K_EXPR: u8 = 0x05;
const K_STATS: u8 = 0x06;
const K_HEAVY: u8 = 0x07;
const K_SNAPSHOT: u8 = 0x08;
const K_SHUTDOWN: u8 = 0x09;
const K_METRICS: u8 = 0x0A;
const K_MERGE_SNAPSHOT: u8 = 0x0B;
const K_SUBSCRIBE: u8 = 0x0C;
const K_UNSUBSCRIBE: u8 = 0x0D;

// Response kinds.
const K_PONG: u8 = 0x81;
const K_INGESTED: u8 = 0x82;
const K_ESTIMATE: u8 = 0x83;
const K_STATS_REPLY: u8 = 0x84;
const K_HEAVY_HITTERS_REPLY: u8 = 0x85;
const K_SNAPSHOT_DONE: u8 = 0x86;
const K_SHUTTING_DOWN: u8 = 0x87;
const K_METRICS_REPLY: u8 = 0x88;
const K_MERGE_DONE: u8 = 0x89;
const K_SUBSCRIBED: u8 = 0x8A;
const K_UNSUBSCRIBED: u8 = 0x8B;
/// The one server-initiated frame kind: pushed to subscribers after each
/// ingest batch or merge, never in reply to a request.  Clients must
/// tolerate it arriving interleaved with direct responses.
const K_ESTIMATE_UPDATE: u8 = 0x8C;
const K_ERROR: u8 = 0xFF;

/// Human-readable name of a frame kind byte, for per-opcode metric labels
/// and diagnostics.  Unassigned kinds render as `"other"`.
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        K_PING => "ping",
        K_INGEST_XML => "ingest_xml",
        K_INGEST_TREES => "ingest_trees",
        K_COUNT => "count",
        K_EXPR => "expr",
        K_STATS => "stats",
        K_HEAVY => "heavy_hitters",
        K_SNAPSHOT => "snapshot",
        K_SHUTDOWN => "shutdown",
        K_METRICS => "metrics",
        K_MERGE_SNAPSHOT => "merge_snapshot",
        K_SUBSCRIBE => "subscribe",
        K_UNSUBSCRIBE => "unsubscribe",
        K_PONG => "pong",
        K_INGESTED => "ingested",
        K_ESTIMATE => "estimate",
        K_STATS_REPLY => "stats_reply",
        K_HEAVY_HITTERS_REPLY => "heavy_reply",
        K_SNAPSHOT_DONE => "snapshot_done",
        K_SHUTTING_DOWN => "shutting_down",
        K_METRICS_REPLY => "metrics_reply",
        K_MERGE_DONE => "merge_done",
        K_SUBSCRIBED => "subscribed",
        K_UNSUBSCRIBED => "unsubscribed",
        K_ESTIMATE_UPDATE => "estimate_update",
        K_ERROR => "error",
        _ => "other",
    }
}

/// The request kind bytes assigned in this protocol version, in opcode
/// order — the iteration domain for per-opcode metric families.
pub const REQUEST_KINDS: &[u8] = &[
    K_PING,
    K_INGEST_XML,
    K_INGEST_TREES,
    K_COUNT,
    K_EXPR,
    K_STATS,
    K_HEAVY,
    K_SNAPSHOT,
    K_SHUTDOWN,
    K_METRICS,
    K_MERGE_SNAPSHOT,
    K_SUBSCRIBE,
    K_UNSUBSCRIBE,
];

// Decode-time allocation guards (counts, not bytes; byte totals are
// already bounded by max_frame).
const MAX_DOCS: u32 = 1 << 20;
const MAX_LABELS: u32 = 1 << 20;
const MAX_TREES: u32 = 1 << 20;
const MAX_NODES: u32 = 1 << 24;
const MAX_ENTRIES: u32 = 1 << 24;

/// Errors from frame reading or payload decoding.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// First four bytes were not `SKTP` — the stream is desynchronized.
    BadMagic,
    /// Peer speaks a protocol version this build does not.
    UnsupportedVersion(u32),
    /// Frame kind byte not assigned in this version.
    UnknownKind(u8),
    /// Declared payload length exceeds the reader's limit.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The reader's configured cap.
        max: u32,
    },
    /// Payload ended before its structure was complete (or a frame was
    /// cut off mid-read).
    Truncated,
    /// A count, index or flag inside the payload is implausible.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic => write!(f, "bad frame magic (not SKTP)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds limit {max}")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Corrupt(what) => write!(f, "frame corrupt: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame: kind byte plus raw payload.
    Msg {
        /// Frame kind.
        kind: u8,
        /// Raw payload bytes (decode with [`Request::decode`] or
        /// [`Response::decode`]).
        payload: Vec<u8>,
    },
    /// Peer closed the connection cleanly between frames.
    Eof,
    /// A read timeout fired with no bytes pending — the connection is
    /// idle, not broken.  Only possible before the first header byte; a
    /// timeout *inside* a frame is reported as [`WireError::Truncated`]
    /// once the reader's stall allowance runs out (immediately for
    /// [`read_frame`], after `stall` for [`read_frame_patient`]).
    Idle,
}

/// Writes one frame.
///
/// Fails with `InvalidInput` when the payload cannot be represented in
/// the u32 length prefix — a silently truncated length would
/// desynchronize the stream for every later frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let frame = frame_bytes(kind, payload)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Assembles one frame — header plus payload — as a single contiguous
/// buffer, without touching any writer.
///
/// The server's write paths use this to do all frame assembly *outside*
/// the per-connection shared-writer mutex: the socket write itself must
/// serialize under that mutex (frame atomicity between the response
/// path and the pusher thread), but nothing else needs to, and a single
/// pre-built buffer keeps the held-lock section to one `write_all`.
pub fn frame_bytes(kind: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32::MAX bytes")
    })?;
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Reads one frame, distinguishing clean EOF and idle timeouts from real
/// protocol failures.
///
/// Zero-patience variant of [`read_frame_patient`]: the first read
/// timeout *inside* a frame is reported as [`WireError::Truncated`].
/// Peers that trickle bytes slower than the reader's socket timeout
/// should be read with [`read_frame_patient`] instead.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, WireError> {
    read_frame_patient(r, max_frame, Duration::ZERO)
}

/// Reads one frame, tolerating mid-frame socket timeouts while the peer
/// keeps making progress.
///
/// The readers in this workspace use short socket read timeouts (the
/// server's doubles as its idle/housekeeping tick), which means a peer
/// that writes a frame in pieces — a slow ingester trickling a large
/// `IngestTrees` batch through a congested link, or an OS that delivers
/// a large write in several segments — can stall *inside* a frame for
/// longer than one timeout without being broken.  Disconnecting such a
/// peer (the pre-`stall` behavior) turns backpressure into an error.
///
/// Semantics:
///
/// * Zero bytes + timeout before the first header byte → [`Frame::Idle`]
///   (unchanged: idle ticks drive housekeeping and deadlines).
/// * A timeout mid-frame starts a stall clock.  Each arriving byte
///   resets it.  Only once `stall` elapses with **no progress at all**
///   is the frame abandoned as [`WireError::Truncated`].
///
/// With `stall == Duration::ZERO` this is exactly [`read_frame`]: the
/// first mid-frame timeout truncates.
pub fn read_frame_patient(
    r: &mut impl Read,
    max_frame: u32,
    stall: Duration,
) -> Result<Frame, WireError> {
    // First byte separately: zero bytes + EOF is a clean close, zero
    // bytes + timeout is an idle tick.  Once a byte has arrived we are
    // mid-frame and any shortfall beyond the stall allowance is an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(Frame::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(Frame::Idle)
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let [first_byte] = first;
    let mut rest = [0u8; HEADER_LEN - 1];
    read_exact_framed(r, &mut rest, stall)?;
    // Parse the header through the payload Reader: first byte + 12 rest
    // bytes are magic(4), version(4), kind(1), len(4), little-endian.
    let mut hdr = Reader { bytes: &rest, pos: 0 };
    let [m0, m1, m2, m3] = *MAGIC;
    if first_byte != m0 || hdr.take(3)? != [m1, m2, m3] {
        return Err(WireError::BadMagic);
    }
    let version = hdr.u32()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = hdr.u8()?;
    let len = hdr.u32()?;
    hdr.finish()?;
    if len > max_frame {
        return Err(WireError::Oversize { len, max: max_frame });
    }
    let mut payload = vec![0u8; widen(len)];
    read_exact_framed(r, &mut payload, stall)?;
    Ok(Frame::Msg { kind, payload })
}

/// `read_exact` for mid-frame bytes: EOF is truncation; a timeout is
/// truncation only after `stall` elapses with zero forward progress.
///
/// The stall clock restarts on every successful read, so a peer that
/// keeps trickling bytes — however slowly — is never disconnected, while
/// a genuinely wedged peer is cut off one stall interval after its last
/// byte.  `read_exact` cannot be used here: on a timeout it discards how
/// many bytes were already consumed, which would desynchronize the
/// stream on retry.
fn read_exact_framed(
    r: &mut impl Read,
    buf: &mut [u8],
    stall: Duration,
) -> Result<(), WireError> {
    let mut rest: &mut [u8] = buf;
    let mut last_progress = Instant::now();
    while !rest.is_empty() {
        match r.read(rest) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => {
                // `read` guarantees n <= rest.len(); min() makes the
                // slice advance panic-free even against a broken impl.
                let n = n.min(rest.len());
                rest = std::mem::take(&mut rest).get_mut(n..).unwrap_or_default();
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() >= stall {
                    return Err(WireError::Truncated);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Ingest a batch of XML documents (one tree each).
    IngestXml(Vec<String>),
    /// Ingest pre-built trees with a batch-local label table; node labels
    /// are indices into `labels`.
    IngestTrees {
        /// Batch-local label names.
        labels: Vec<String>,
        /// Trees whose [`Label`]s index into `labels`.
        trees: Vec<Tree>,
    },
    /// Estimate `COUNT_ord` (or unordered `COUNT`) of a textual pattern.
    Count {
        /// `true` for unordered `COUNT`, `false` for `COUNT_ord`.
        unordered: bool,
        /// The pattern, e.g. `"A(B,C)"`.
        pattern: String,
    },
    /// Evaluate a `+,-,*` expression over counts.
    Expr(String),
    /// Fetch synopsis statistics.
    Stats,
    /// Fetch the tracked heavy hitters, at most `limit` entries.
    HeavyHitters {
        /// Maximum entries to return.
        limit: u32,
    },
    /// Force a checkpoint to the server's snapshot path.
    Snapshot,
    /// Ask the server to checkpoint and stop accepting connections.
    Shutdown,
    /// Fetch the server's metrics exposition.
    Metrics {
        /// `true` for the JSON rendering, `false` for Prometheus text.
        json: bool,
    },
    /// Merge a serialised shard snapshot (the `SKTR` format) into the
    /// server's live synopsis.  The snapshot's configuration must equal
    /// the server's; label tables are reconciled by name.  Bounded by the
    /// connection's `max_frame` like every other frame (32 MiB default) —
    /// larger shards must be merged offline (`sketchtree merge`).
    MergeSnapshot(Vec<u8>),
    /// Register a standing query on this connection.  The server replies
    /// [`Response::Subscribed`] and thereafter pushes one
    /// [`Response::EstimateUpdate`] per ingest batch / merge until the
    /// subscription is dropped (unsubscribe, disconnect, or eviction).
    Subscribe {
        /// How `query` is interpreted.
        mode: SubscribeMode,
        /// Pattern or expression text.
        query: String,
    },
    /// Drop a standing query previously registered on this connection.
    Unsubscribe {
        /// The id from [`Response::Subscribed`].
        id: u64,
    },
}

/// How a [`Request::Subscribe`] query string is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeMode {
    /// `COUNT_ord(Q)` of one pattern.
    Ordered,
    /// Unordered `COUNT(Q)` of one pattern.
    Unordered,
    /// A `+ − ×` expression over counts.
    Expr,
}

impl SubscribeMode {
    fn to_wire(self) -> u8 {
        match self {
            SubscribeMode::Ordered => 0,
            SubscribeMode::Unordered => 1,
            SubscribeMode::Expr => 2,
        }
    }

    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(SubscribeMode::Ordered),
            1 => Ok(SubscribeMode::Unordered),
            2 => Ok(SubscribeMode::Expr),
            _ => Err(WireError::Corrupt("subscribe mode")),
        }
    }
}

/// Synopsis statistics as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Trees ingested so far.
    pub trees_processed: u64,
    /// Pattern instances sketched so far.
    pub patterns_processed: u64,
    /// Distinct labels interned.
    pub labels: u64,
    /// Synopsis resident size in bytes.
    pub memory_bytes: u64,
    /// Configured max pattern edges `k`.
    pub max_pattern_edges: u64,
    /// Sketch width `s1`.
    pub s1: u64,
    /// Sketch depth `s2`.
    pub s2: u64,
    /// Virtual stream count.
    pub virtual_streams: u64,
    /// Heavy hitters tracked per stream.
    pub topk: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// A batch was ingested.
    Ingested {
        /// Trees added by this batch.
        trees: u64,
        /// Pattern instances added by this batch.
        patterns: u64,
        /// Server-wide tree total after the batch.
        total_trees: u64,
        /// Server-wide pattern total after the batch.
        total_patterns: u64,
    },
    /// A count or expression estimate.
    Estimate(f64),
    /// Statistics reply.
    Stats(Stats),
    /// Heavy-hitter reply: `(mapped value, frequency estimate)` pairs.
    HeavyHitters(Vec<(u64, i64)>),
    /// A checkpoint was written (`bytes` on disk).
    SnapshotDone {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// The server acknowledged shutdown; the connection closes next.
    ShuttingDown,
    /// The rendered metrics exposition (Prometheus text or JSON, per the
    /// request's `json` flag).
    Metrics(String),
    /// A shard snapshot was merged.
    MergeDone {
        /// Server-wide tree total after the merge.
        total_trees: u64,
        /// Server-wide pattern total after the merge.
        total_patterns: u64,
    },
    /// A standing query was registered.
    Subscribed {
        /// Subscription id (scope: this connection's server session).
        id: u64,
        /// The synopsis epoch at registration; the first pushed update
        /// will carry a strictly larger epoch.
        epoch: u64,
    },
    /// A standing query was dropped.
    Unsubscribed,
    /// A pushed estimate for one subscription at one epoch — the only
    /// server-initiated frame.  `result` is `Err` when the query cannot
    /// currently be answered (e.g. a wildcard expansion overflowed after
    /// new labels arrived); the subscription stays live either way.
    EstimateUpdate {
        /// Subscription id.
        id: u64,
        /// The synopsis epoch this estimate belongs to.
        epoch: u64,
        /// The estimate, or why there is none at this epoch.
        result: Result<f64, String>,
    },
    /// The request failed; human-readable reason.
    Error(String),
}

impl Request {
    /// The frame kind byte for this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => K_PING,
            Request::IngestXml(_) => K_INGEST_XML,
            Request::IngestTrees { .. } => K_INGEST_TREES,
            Request::Count { .. } => K_COUNT,
            Request::Expr(_) => K_EXPR,
            Request::Stats => K_STATS,
            Request::HeavyHitters { .. } => K_HEAVY,
            Request::Snapshot => K_SNAPSHOT,
            Request::Shutdown => K_SHUTDOWN,
            Request::Metrics { .. } => K_METRICS,
            Request::MergeSnapshot(_) => K_MERGE_SNAPSHOT,
            Request::Subscribe { .. } => K_SUBSCRIBE,
            Request::Unsubscribe { .. } => K_UNSUBSCRIBE,
        }
    }

    /// Encodes the payload (header excluded).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::new());
        match self {
            Request::Ping | Request::Stats | Request::Snapshot | Request::Shutdown => {}
            Request::IngestXml(docs) => {
                w.len(docs.len());
                for d in docs {
                    w.str(d);
                }
            }
            Request::IngestTrees { labels, trees } => {
                w.len(labels.len());
                for l in labels {
                    w.str(l);
                }
                w.len(trees.len());
                for t in trees {
                    encode_tree(&mut w, t);
                }
            }
            Request::Count { unordered, pattern } => {
                w.u8(u8::from(*unordered));
                w.str(pattern);
            }
            Request::Expr(e) => w.str(e),
            Request::HeavyHitters { limit } => w.u32(*limit),
            Request::Metrics { json } => w.u8(u8::from(*json)),
            Request::MergeSnapshot(bytes) => {
                w.len(bytes.len());
                w.0.extend_from_slice(bytes);
            }
            Request::Subscribe { mode, query } => {
                w.u8(mode.to_wire());
                w.str(query);
            }
            Request::Unsubscribe { id } => w.u64(*id),
        }
        w.0
    }

    /// Decodes a payload for `kind`; rejects unknown kinds and trailing
    /// bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { bytes: payload, pos: 0 };
        let req = match kind {
            K_PING => Request::Ping,
            K_STATS => Request::Stats,
            K_SNAPSHOT => Request::Snapshot,
            K_SHUTDOWN => Request::Shutdown,
            K_INGEST_XML => {
                let n = r.count("document count", MAX_DOCS)?;
                let mut docs = Vec::with_capacity(widen(n.min(1 << 12)));
                for _ in 0..n {
                    docs.push(r.str()?);
                }
                Request::IngestXml(docs)
            }
            K_INGEST_TREES => {
                // Shares the zero-copy decoder (which finishes the reader
                // itself), then materializes owned labels for the enum.
                let (labels, trees) = decode_ingest_trees(payload)?;
                return Ok(Request::IngestTrees {
                    labels: labels.into_iter().map(str::to_owned).collect(),
                    trees,
                });
            }
            K_COUNT => {
                let unordered = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("unordered flag")),
                };
                Request::Count { unordered, pattern: r.str()? }
            }
            K_EXPR => Request::Expr(r.str()?),
            K_HEAVY => Request::HeavyHitters { limit: r.u32()? },
            K_METRICS => {
                let json = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("json flag")),
                };
                Request::Metrics { json }
            }
            K_MERGE_SNAPSHOT => {
                // The byte length is already bounded by max_frame; the
                // prefix only needs to match the remaining payload.
                let len = widen(r.u32()?);
                Request::MergeSnapshot(r.take(len)?.to_vec())
            }
            K_SUBSCRIBE => Request::Subscribe {
                mode: SubscribeMode::from_wire(r.u8()?)?,
                query: r.str()?,
            },
            K_UNSUBSCRIBE => Request::Unsubscribe { id: r.u64()? },
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(req)
    }

    /// Writes this request as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, self.kind(), &self.encode())
    }
}

impl Response {
    /// The frame kind byte for this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong => K_PONG,
            Response::Ingested { .. } => K_INGESTED,
            Response::Estimate(_) => K_ESTIMATE,
            Response::Stats(_) => K_STATS_REPLY,
            Response::HeavyHitters(_) => K_HEAVY_HITTERS_REPLY,
            Response::SnapshotDone { .. } => K_SNAPSHOT_DONE,
            Response::ShuttingDown => K_SHUTTING_DOWN,
            Response::Metrics(_) => K_METRICS_REPLY,
            Response::MergeDone { .. } => K_MERGE_DONE,
            Response::Subscribed { .. } => K_SUBSCRIBED,
            Response::Unsubscribed => K_UNSUBSCRIBED,
            Response::EstimateUpdate { .. } => K_ESTIMATE_UPDATE,
            Response::Error(_) => K_ERROR,
        }
    }

    /// Encodes the payload (header excluded).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::new());
        match self {
            Response::Pong | Response::ShuttingDown => {}
            Response::Ingested { trees, patterns, total_trees, total_patterns } => {
                w.u64(*trees);
                w.u64(*patterns);
                w.u64(*total_trees);
                w.u64(*total_patterns);
            }
            Response::Estimate(v) => w.u64(v.to_bits()),
            Response::Stats(s) => {
                w.u64(s.trees_processed);
                w.u64(s.patterns_processed);
                w.u64(s.labels);
                w.u64(s.memory_bytes);
                w.u64(s.max_pattern_edges);
                w.u64(s.s1);
                w.u64(s.s2);
                w.u64(s.virtual_streams);
                w.u64(s.topk);
            }
            Response::HeavyHitters(entries) => {
                w.len(entries.len());
                for &(v, f) in entries {
                    w.u64(v);
                    w.i64(f);
                }
            }
            Response::SnapshotDone { bytes } => w.u64(*bytes),
            Response::Metrics(text) => w.str(text),
            Response::MergeDone { total_trees, total_patterns } => {
                w.u64(*total_trees);
                w.u64(*total_patterns);
            }
            Response::Subscribed { id, epoch } => {
                w.u64(*id);
                w.u64(*epoch);
            }
            Response::Unsubscribed => {}
            Response::EstimateUpdate { id, epoch, result } => {
                w.u64(*id);
                w.u64(*epoch);
                match result {
                    Ok(v) => {
                        w.u8(1);
                        w.u64(v.to_bits());
                    }
                    Err(msg) => {
                        w.u8(0);
                        w.str(msg);
                    }
                }
            }
            Response::Error(msg) => w.str(msg),
        }
        w.0
    }

    /// Decodes a payload for `kind`; rejects unknown kinds and trailing
    /// bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { bytes: payload, pos: 0 };
        let resp = match kind {
            K_PONG => Response::Pong,
            K_SHUTTING_DOWN => Response::ShuttingDown,
            K_INGESTED => Response::Ingested {
                trees: r.u64()?,
                patterns: r.u64()?,
                total_trees: r.u64()?,
                total_patterns: r.u64()?,
            },
            K_ESTIMATE => Response::Estimate(f64::from_bits(r.u64()?)),
            K_STATS_REPLY => Response::Stats(Stats {
                trees_processed: r.u64()?,
                patterns_processed: r.u64()?,
                labels: r.u64()?,
                memory_bytes: r.u64()?,
                max_pattern_edges: r.u64()?,
                s1: r.u64()?,
                s2: r.u64()?,
                virtual_streams: r.u64()?,
                topk: r.u64()?,
            }),
            K_HEAVY_HITTERS_REPLY => {
                let n = r.count("heavy-hitter count", MAX_ENTRIES)?;
                let mut entries = Vec::with_capacity(widen(n.min(1 << 12)));
                for _ in 0..n {
                    entries.push((r.u64()?, r.i64()?));
                }
                Response::HeavyHitters(entries)
            }
            K_SNAPSHOT_DONE => Response::SnapshotDone { bytes: r.u64()? },
            K_METRICS_REPLY => Response::Metrics(r.str()?),
            K_MERGE_DONE => Response::MergeDone {
                total_trees: r.u64()?,
                total_patterns: r.u64()?,
            },
            K_SUBSCRIBED => Response::Subscribed { id: r.u64()?, epoch: r.u64()? },
            K_UNSUBSCRIBED => Response::Unsubscribed,
            K_ESTIMATE_UPDATE => {
                let id = r.u64()?;
                let epoch = r.u64()?;
                let result = match r.u8()? {
                    1 => Ok(f64::from_bits(r.u64()?)),
                    0 => Err(r.str()?),
                    _ => return Err(WireError::Corrupt("estimate-update flag")),
                };
                Response::EstimateUpdate { id, epoch, result }
            }
            K_ERROR => Response::Error(r.str()?),
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Writes this response as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, self.kind(), &self.encode())
    }
}

/// Frame kind byte of `IngestTrees`, exposed so the server's connection
/// loop can route the hot ingest frame through [`decode_ingest_trees`]
/// without building an owned [`Request`].
pub const INGEST_TREES_KIND: u8 = K_INGEST_TREES;

/// Zero-copy decode of an `IngestTrees` payload: label names are borrowed
/// straight out of `payload` (no per-label `String` allocation), trees are
/// built exactly as [`Request::decode`] builds them.  Enforces the same
/// bounds, UTF-8 validation and trailing-byte rejection; the two decoders
/// accept and reject byte-identical payload sets.
pub fn decode_ingest_trees(payload: &[u8]) -> Result<(Vec<&str>, Vec<Tree>), WireError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let n = r.count("label count", MAX_LABELS)?;
    let mut labels = Vec::with_capacity(widen(n.min(1 << 12)));
    for _ in 0..n {
        labels.push(r.str_ref()?);
    }
    let t = r.count("tree count", MAX_TREES)?;
    let mut trees = Vec::with_capacity(widen(t.min(1 << 12)));
    for _ in 0..t {
        trees.push(decode_tree(&mut r, n)?);
    }
    r.finish()?;
    Ok((labels, trees))
}

/// Preorder node list with explicit fanout: `node_count`, then per node
/// `label_index` + `child_count`.
fn encode_tree(w: &mut Writer, tree: &Tree) {
    w.len(tree.len());
    for id in tree.preorder() {
        w.u32(tree.label(id).0);
        w.len(tree.children(id).len());
    }
}

fn decode_tree(r: &mut Reader<'_>, label_count: u32) -> Result<Tree, WireError> {
    let n = r.count("node count", MAX_NODES)?;
    if n == 0 {
        return Err(WireError::Corrupt("empty tree"));
    }
    let mut builder = TreeBuilder::new();
    // Stack of open nodes' remaining child slots.
    let mut remaining: Vec<u32> = Vec::new();
    for i in 0..n {
        if i > 0 {
            // Pop completed subtrees until an open slot is on top.
            while remaining.last() == Some(&0) {
                builder.close().map_err(|_| WireError::Corrupt("tree shape"))?;
                remaining.pop();
            }
            match remaining.last_mut() {
                Some(slots) => *slots -= 1,
                // More nodes declared than child slots: a second root.
                None => return Err(WireError::Corrupt("tree has extra root")),
            }
        }
        let label = r.u32()?;
        if label >= label_count {
            return Err(WireError::Corrupt("label index out of range"));
        }
        let fanout = r.u32()?;
        builder
            .open(Label(label))
            .map_err(|_| WireError::Corrupt("tree shape"))?;
        remaining.push(fanout);
    }
    while let Some(slots) = remaining.pop() {
        if slots != 0 {
            return Err(WireError::Corrupt("tree fanout exceeds node count"));
        }
        builder.close().map_err(|_| WireError::Corrupt("tree shape"))?;
    }
    builder.finish().map_err(|_| WireError::Corrupt("tree shape"))
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Encodes a length or count.  The protocol caps these at `u32::MAX`;
    /// a bigger value cannot be encoded, and truncating it with `as`
    /// would emit a wrong prefix and desynchronize the stream, so fail
    /// loudly at the encode site instead.
    fn len(&mut self, n: usize) {
        // lint:allow(L1, reason = "deliberate encode-side policy: failing loudly beats emitting a wrong length prefix and desynchronizing the stream")
        self.u32(u32::try_from(n).expect("length exceeds u32::MAX, not encodable in SKTP"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let out = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let arr = <[u8; 4]>::try_from(self.take(4)?).map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let arr = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        let arr = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| WireError::Truncated)?;
        Ok(i64::from_le_bytes(arr))
    }
    fn count(&mut self, what: &'static str, max: u32) -> Result<u32, WireError> {
        let v = self.u32()?;
        if v > max {
            return Err(WireError::Corrupt(what));
        }
        Ok(v)
    }
    /// Borrows a length-prefixed UTF-8 string straight out of the payload
    /// buffer — the zero-copy primitive behind [`decode_ingest_trees`].
    fn str_ref(&mut self) -> Result<&'a str, WireError> {
        let len = widen(self.u32()?);
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::Corrupt("invalid utf-8 string"))
    }
    fn str(&mut self) -> Result<String, WireError> {
        self.str_ref().map(str::to_owned)
    }
    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Corrupt("trailing payload bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        let Frame::Msg { kind, payload } = frame else {
            panic!("expected a frame")
        };
        assert_eq!(Request::decode(kind, &payload).unwrap(), req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::IngestXml(vec!["<a/>".into(), "<b><c/></b>".into()]));
        let tree = Tree::node(Label(0), vec![Tree::leaf(Label(1)), Tree::leaf(Label(0))]);
        roundtrip_req(Request::IngestTrees {
            labels: vec!["article".into(), "author".into()],
            trees: vec![tree, Tree::leaf(Label(1))],
        });
        roundtrip_req(Request::Count { unordered: true, pattern: "A(B,C)".into() });
        roundtrip_req(Request::Expr("COUNT_ord(A(B)) - COUNT(C)".into()));
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::HeavyHitters { limit: 17 });
        roundtrip_req(Request::Snapshot);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Metrics { json: false });
        roundtrip_req(Request::Metrics { json: true });
        roundtrip_req(Request::MergeSnapshot(vec![0x53, 0x4B, 0x54, 0x52, 0, 1, 2, 3]));
        roundtrip_req(Request::MergeSnapshot(Vec::new()));
        roundtrip_req(Request::Subscribe {
            mode: SubscribeMode::Ordered,
            query: "article(author)".into(),
        });
        roundtrip_req(Request::Subscribe {
            mode: SubscribeMode::Unordered,
            query: "A(B,C)".into(),
        });
        roundtrip_req(Request::Subscribe {
            mode: SubscribeMode::Expr,
            query: "COUNT_ord(A(B)) - COUNT(C)".into(),
        });
        roundtrip_req(Request::Unsubscribe { id: u64::MAX });
    }

    #[test]
    fn subscribe_mode_is_strict() {
        let mut w = Writer(Vec::new());
        w.u8(3);
        w.str("A(B)");
        assert!(matches!(
            Request::decode(K_SUBSCRIBE, &w.0),
            Err(WireError::Corrupt("subscribe mode"))
        ));
    }

    #[test]
    fn estimate_update_flag_is_strict() {
        let mut w = Writer(Vec::new());
        w.u64(1);
        w.u64(2);
        w.u8(9);
        assert!(matches!(
            Response::decode(K_ESTIMATE_UPDATE, &w.0),
            Err(WireError::Corrupt("estimate-update flag"))
        ));
    }

    #[test]
    fn merge_snapshot_length_prefix_is_strict() {
        // Prefix longer than the remaining bytes → truncated.
        let mut w = Writer(Vec::new());
        w.u32(10);
        w.0.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            Request::decode(K_MERGE_SNAPSHOT, &w.0),
            Err(WireError::Truncated)
        ));
        // Prefix shorter than the payload → trailing bytes.
        let mut w = Writer(Vec::new());
        w.u32(1);
        w.0.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            Request::decode(K_MERGE_SNAPSHOT, &w.0),
            Err(WireError::Corrupt("trailing payload bytes"))
        ));
    }

    #[test]
    fn metrics_json_flag_is_strict() {
        let payload = vec![2u8];
        assert!(matches!(
            Request::decode(K_METRICS, &payload),
            Err(WireError::Corrupt("json flag"))
        ));
    }

    #[test]
    fn kind_names_cover_every_assigned_kind() {
        for k in [
            K_PING, K_INGEST_XML, K_INGEST_TREES, K_COUNT, K_EXPR, K_STATS, K_HEAVY, K_SNAPSHOT,
            K_SHUTDOWN, K_METRICS, K_MERGE_SNAPSHOT, K_SUBSCRIBE, K_UNSUBSCRIBE, K_PONG,
            K_INGESTED, K_ESTIMATE, K_STATS_REPLY, K_HEAVY_HITTERS_REPLY, K_SNAPSHOT_DONE,
            K_SHUTTING_DOWN, K_METRICS_REPLY, K_MERGE_DONE, K_SUBSCRIBED, K_UNSUBSCRIBED,
            K_ESTIMATE_UPDATE, K_ERROR,
        ] {
            assert_ne!(kind_name(k), "other", "kind 0x{k:02x} unnamed");
        }
        assert_eq!(kind_name(0x42), "other");
        // Request-kind table agrees with the request encoder.
        for &k in REQUEST_KINDS {
            assert_ne!(kind_name(k), "other");
        }
        assert!(REQUEST_KINDS.contains(&Request::Metrics { json: false }.kind()));
    }

    #[test]
    fn response_roundtrips() {
        for resp in [
            Response::Pong,
            Response::Ingested { trees: 3, patterns: 40, total_trees: 100, total_patterns: 900 },
            Response::Estimate(123.456),
            Response::Estimate(f64::NEG_INFINITY),
            Response::Stats(Stats {
                trees_processed: 1,
                patterns_processed: 2,
                labels: 3,
                memory_bytes: 4,
                max_pattern_edges: 5,
                s1: 6,
                s2: 7,
                virtual_streams: 8,
                topk: 9,
            }),
            Response::HeavyHitters(vec![(10, -5), (u64::MAX, i64::MIN)]),
            Response::SnapshotDone { bytes: 4096 },
            Response::ShuttingDown,
            Response::Metrics("# HELP x y\nx 1\n".into()),
            Response::MergeDone { total_trees: 42, total_patterns: 777 },
            Response::Subscribed { id: 7, epoch: 99 },
            Response::Unsubscribed,
            Response::EstimateUpdate { id: 7, epoch: 100, result: Ok(123.456) },
            Response::EstimateUpdate { id: 8, epoch: 100, result: Ok(-0.0) },
            Response::EstimateUpdate {
                id: 9,
                epoch: 101,
                result: Err("query expands to more than 4096 concrete patterns".into()),
            },
            Response::Error("nope".into()),
        ] {
            let mut buf = Vec::new();
            resp.write_to(&mut buf).unwrap();
            let Frame::Msg { kind, payload } =
                read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap()
            else {
                panic!("expected a frame")
            };
            assert_eq!(Response::decode(kind, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn eof_and_bad_magic() {
        assert!(matches!(
            read_frame(&mut Cursor::new(b""), 1024),
            Ok(Frame::Eof)
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"NOPE_________"), 1024),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn version_and_size_guards() {
        let mut buf = Vec::new();
        Request::Ping.write_to(&mut buf).unwrap();
        let mut wrong_version = buf.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&wrong_version), 1024),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut huge = buf.clone();
        huge[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&huge), 1024),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_truncated() {
        let mut buf = Vec::new();
        Request::Expr("COUNT_ord(A(B))".into()).write_to(&mut buf).unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut Cursor::new(&buf[..cut]), 1024) {
                Err(WireError::Truncated) => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_trees_rejected() {
        // Extra root: two nodes, first declares no children.
        let mut w = Writer(Vec::new());
        w.u32(1); // one label
        w.str("a");
        w.u32(1); // one tree
        w.u32(2); // two nodes
        w.u32(0);
        w.u32(0); // root, fanout 0
        w.u32(0);
        w.u32(0); // orphan
        assert!(matches!(
            Request::decode(K_INGEST_TREES, &w.0),
            Err(WireError::Corrupt("tree has extra root"))
        ));
        // Fanout overruns node count.
        let mut w = Writer(Vec::new());
        w.u32(1);
        w.str("a");
        w.u32(1);
        w.u32(1); // one node
        w.u32(0);
        w.u32(3); // claims 3 children
        assert!(matches!(
            Request::decode(K_INGEST_TREES, &w.0),
            Err(WireError::Corrupt("tree fanout exceeds node count"))
        ));
        // Label out of range.
        let mut w = Writer(Vec::new());
        w.u32(1);
        w.str("a");
        w.u32(1);
        w.u32(1);
        w.u32(7); // only label 0 exists
        w.u32(0);
        assert!(matches!(
            Request::decode(K_INGEST_TREES, &w.0),
            Err(WireError::Corrupt("label index out of range"))
        ));
    }

    #[test]
    fn zero_copy_ingest_decode_matches_request_decode() {
        let tree = Tree::node(Label(0), vec![Tree::leaf(Label(1)), Tree::leaf(Label(0))]);
        let req = Request::IngestTrees {
            labels: vec!["article".into(), "author".into()],
            trees: vec![tree, Tree::leaf(Label(1))],
        };
        let payload = req.encode();
        let (labels, trees) = decode_ingest_trees(&payload).unwrap();
        let Request::IngestTrees { labels: want_labels, trees: want_trees } =
            Request::decode(K_INGEST_TREES, &payload).unwrap()
        else {
            panic!("expected IngestTrees")
        };
        assert_eq!(labels, want_labels.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(trees, want_trees);
        // Both decoders reject the same malformed payloads the same way:
        // truncation anywhere, trailing bytes, bad UTF-8.
        for cut in 0..payload.len() {
            let borrowed = decode_ingest_trees(&payload[..cut]).err();
            let owned = Request::decode(K_INGEST_TREES, &payload[..cut]).err();
            assert_eq!(
                borrowed.map(|e| e.to_string()),
                owned.map(|e| e.to_string()),
                "cut {cut}"
            );
        }
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(matches!(
            decode_ingest_trees(&trailing),
            Err(WireError::Corrupt("trailing payload bytes"))
        ));
        let mut w = Writer(Vec::new());
        w.u32(1);
        w.u32(2);
        w.0.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8 label
        assert!(matches!(
            decode_ingest_trees(&w.0),
            Err(WireError::Corrupt("invalid utf-8 string"))
        ));
        assert_eq!(INGEST_TREES_KIND, req.kind());
    }

    #[test]
    fn trailing_payload_rejected() {
        let mut payload = Request::HeavyHitters { limit: 3 }.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(K_HEAVY, &payload),
            Err(WireError::Corrupt("trailing payload bytes"))
        ));
    }
}
