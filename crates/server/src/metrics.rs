//! Server-side instrumentation: request/connection/checkpoint metrics and
//! scrape-time sketch-health gauges.
//!
//! One [`ServerMetrics`] lives for the server's lifetime and owns the
//! [`Registry`] every series is registered in, including the core-pipeline
//! handles ([`CoreMetrics`]) that get attached to the shared synopsis at
//! startup.  Worker threads touch only pre-registered atomic handles; the
//! registry's internal lock is taken exclusively at render (scrape) time.
//!
//! Sketch-health gauges are *pull-model*: nothing updates them during
//! ingest.  [`ServerMetrics::refresh_health`] recomputes them from a
//! [`SketchHealth`](sketchtree_core::metrics::SketchHealth) snapshot
//! taken under one shared read lock, and the
//! render paths (SKTP `Metrics` opcode, HTTP `/metrics`) call it before
//! rendering so every exposition is current.

use crate::wire::{kind_name, REQUEST_KINDS};
use sketchtree_core::concurrent::SharedSketchTree;
use sketchtree_core::metrics::CoreMetrics;
use sketchtree_metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS};
use std::sync::Arc;
use std::time::Duration;

/// Every metric family the server maintains, plus the registry that
/// renders them.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// Core-pipeline handles; attach to the shared synopsis with
    /// [`SharedSketchTree::attach_metrics`].
    pub core: Arc<CoreMetrics>,
    /// Connections accepted (`sktp_connections_accepted_total`).
    pub connections_accepted: Arc<Counter>,
    /// Connections currently open (`sktp_connections_active`).
    pub connections_active: Arc<Gauge>,
    /// Connections closed by the idle timeout (`sktp_idle_closes_total`).
    pub idle_closes: Arc<Counter>,
    /// Frames read from clients (`sktp_frames_total{direction="in"}`).
    pub frames_in: Arc<Counter>,
    /// Frames written to clients (`sktp_frames_total{direction="out"}`).
    pub frames_out: Arc<Counter>,
    /// Bytes read, headers included (`sktp_bytes_total{direction="in"}`).
    pub bytes_in: Arc<Counter>,
    /// Bytes written, headers included
    /// (`sktp_bytes_total{direction="out"}`).
    pub bytes_out: Arc<Counter>,
    /// Error responses sent (`sktp_error_responses_total`).
    pub error_responses: Arc<Counter>,
    /// Checkpoints written (`sktp_checkpoints_total`).
    pub checkpoints: Arc<Counter>,
    /// Checkpoint attempts that failed (`sktp_checkpoint_errors_total`).
    pub checkpoint_errors: Arc<Counter>,
    /// Seconds per checkpoint write (`sktp_checkpoint_seconds`).
    pub checkpoint_seconds: Arc<Histogram>,
    /// Size of the last checkpoint in bytes (`sktp_checkpoint_bytes`).
    pub checkpoint_bytes: Arc<Gauge>,
    /// Snapshot restores performed at startup (`sktp_restores_total`).
    pub restores: Arc<Counter>,
    /// Corrupt checkpoints quarantined at startup
    /// (`sketchtree_restore_corrupt_total`).
    pub restore_corrupt: Arc<Counter>,
    /// Stale checkpoint temp files removed at startup
    /// (`sketchtree_restore_stale_tmp_total`).
    pub restore_stale_tmp: Arc<Counter>,
    /// Ingest batches appended to the write-ahead log
    /// (`sketchtree_wal_appends_total`).
    pub wal_appends: Arc<Counter>,
    /// Bytes appended to the write-ahead log, frame headers included
    /// (`sketchtree_wal_bytes_total`).
    pub wal_bytes: Arc<Counter>,
    /// Group-commit fsyncs issued on the write-ahead log
    /// (`sketchtree_wal_fsyncs_total`).
    pub wal_fsyncs: Arc<Counter>,
    /// Seconds per WAL append that hit a group-commit boundary — the
    /// frame write plus its fdatasync (`sketchtree_wal_fsync_seconds`).
    pub wal_fsync_seconds: Arc<Histogram>,
    /// Current write-ahead-log file size (`sketchtree_wal_size_bytes`).
    pub wal_size: Arc<Gauge>,
    /// WAL rotations after successful checkpoints
    /// (`sketchtree_wal_truncations_total`).
    pub wal_truncations: Arc<Counter>,
    /// Batches replayed from the WAL at startup
    /// (`sketchtree_wal_replayed_batches_total`).
    pub wal_replayed: Arc<Counter>,
    /// Torn or undecodable WAL tails truncated at recovery
    /// (`sketchtree_wal_torn_tail_total`).
    pub wal_torn: Arc<Counter>,
    /// Snapshot merges applied via MergeSnapshot (`sktp_merges_total`).
    pub merges: Arc<Counter>,
    /// Cumulative bytes of merged snapshots (`sktp_merge_bytes_total`).
    pub merge_bytes: Arc<Counter>,
    /// Live standing-query subscriptions across all connections
    /// (`sketchtree_subscriptions_active`).
    pub subscriptions_active: Arc<Gauge>,
    /// `EstimateUpdate` frames queued to subscribers
    /// (`sktp_push_updates_total`).
    pub push_updates: Arc<Counter>,
    /// Subscriptions evicted because their outbound queue stayed full
    /// (`sktp_slow_subscriber_evictions_total`).
    pub slow_subscriber_evictions: Arc<Counter>,
    /// Seconds per batch re-evaluating every registered standing query
    /// (`sketchtree_standing_eval_seconds`); its `_count` equals the
    /// number of batches broadcast, independent of subscriber count.
    pub standing_eval_seconds: Arc<Histogram>,
    /// Seconds per batch fanning evaluated results out to subscriber
    /// queues (`sketchtree_push_seconds`).
    pub push_seconds: Arc<Histogram>,
    /// Ad-hoc query answers served from the epoch-keyed cache
    /// (`sketchtree_query_cache_hits_total`).
    pub cache_hits: Arc<Counter>,
    /// Ad-hoc query answers that had to be computed
    /// (`sketchtree_query_cache_misses_total`).
    pub cache_misses: Arc<Counter>,
    /// Per-opcode request latency histograms, keyed by request kind byte
    /// (`sktp_request_seconds{opcode=…}`); the final entry is the
    /// `"other"` catch-all for unknown kinds.
    request_seconds: Vec<(u8, Arc<Histogram>)>,
    other_request_seconds: Arc<Histogram>,
    // Sketch-health gauges (pull-model; see refresh_health).
    health_counter_fill: Arc<Gauge>,
    health_counters_nonzero: Arc<Gauge>,
    health_counters_total: Arc<Gauge>,
    health_topk_fill: Arc<Gauge>,
    health_topk_tracked: Arc<Gauge>,
    health_topk_capacity: Arc<Gauge>,
    health_virtual_streams: Arc<Gauge>,
    health_partition_imbalance: Arc<Gauge>,
    health_values_processed: Arc<Gauge>,
    health_residual_self_join: Arc<Gauge>,
    health_estimator_spread: Arc<Gauge>,
    health_memory_bytes: Arc<Gauge>,
    health_trees: Arc<Gauge>,
    health_patterns: Arc<Gauge>,
    health_labels: Arc<Gauge>,
}

impl ServerMetrics {
    /// Builds the full server metric set in a fresh registry.
    pub fn new() -> Arc<Self> {
        let registry = Registry::new();
        let core = CoreMetrics::register(&registry);
        let frames = |dir: &str| {
            registry.counter_with(
                "sktp_frames_total",
                "SKTP frames transferred, by direction",
                &[("direction", dir)],
            )
        };
        let bytes = |dir: &str| {
            registry.counter_with(
                "sktp_bytes_total",
                "Bytes transferred on SKTP connections (headers included), by direction",
                &[("direction", dir)],
            )
        };
        let req_hist = |opcode: &str| {
            registry.histogram_with(
                "sktp_request_seconds",
                "Seconds from request decode to response write, by opcode",
                LATENCY_BUCKETS,
                &[("opcode", opcode)],
            )
        };
        let request_seconds: Vec<(u8, Arc<Histogram>)> = REQUEST_KINDS
            .iter()
            .map(|&k| (k, req_hist(kind_name(k))))
            .collect();
        let other_request_seconds = req_hist("other");
        let health_gauge = |name: &str, help: &str| registry.gauge(name, help);
        Arc::new(Self {
            core,
            connections_accepted: registry.counter(
                "sktp_connections_accepted_total",
                "TCP connections accepted",
            ),
            connections_active: registry
                .gauge("sktp_connections_active", "TCP connections currently open"),
            idle_closes: registry.counter(
                "sktp_idle_closes_total",
                "Connections closed by the idle timeout",
            ),
            frames_in: frames("in"),
            frames_out: frames("out"),
            bytes_in: bytes("in"),
            bytes_out: bytes("out"),
            error_responses: registry
                .counter("sktp_error_responses_total", "Error responses sent to clients"),
            checkpoints: registry.counter("sktp_checkpoints_total", "Checkpoints written"),
            checkpoint_errors: registry
                .counter("sktp_checkpoint_errors_total", "Checkpoint attempts that failed"),
            checkpoint_seconds: registry.histogram(
                "sktp_checkpoint_seconds",
                "Seconds per checkpoint write (serialize + fsync + rename + dir fsync)",
                LATENCY_BUCKETS,
            ),
            checkpoint_bytes: registry
                .gauge("sktp_checkpoint_bytes", "Size of the last checkpoint in bytes"),
            restores: registry.counter(
                "sktp_restores_total",
                "Snapshot restores performed at startup",
            ),
            restore_corrupt: registry.counter(
                "sketchtree_restore_corrupt_total",
                "Corrupt checkpoints quarantined at startup (renamed *.corrupt, state rebuilt from the write-ahead log)",
            ),
            restore_stale_tmp: registry.counter(
                "sketchtree_restore_stale_tmp_total",
                "Stale checkpoint temp files (crash between write and rename) removed at startup",
            ),
            wal_appends: registry.counter(
                "sketchtree_wal_appends_total",
                "Ingest batches appended to the write-ahead log before acking",
            ),
            wal_bytes: registry.counter(
                "sketchtree_wal_bytes_total",
                "Bytes appended to the write-ahead log, frame headers included",
            ),
            wal_fsyncs: registry.counter(
                "sketchtree_wal_fsyncs_total",
                "Group-commit fsyncs issued on the write-ahead log",
            ),
            wal_fsync_seconds: registry.histogram(
                "sketchtree_wal_fsync_seconds",
                "Seconds per WAL append that hit a group-commit boundary (frame write + fdatasync)",
                LATENCY_BUCKETS,
            ),
            wal_size: registry.gauge(
                "sketchtree_wal_size_bytes",
                "Current write-ahead-log file size in bytes (drops at each rotation)",
            ),
            wal_truncations: registry.counter(
                "sketchtree_wal_truncations_total",
                "Write-ahead-log rotations after successful checkpoints",
            ),
            wal_replayed: registry.counter(
                "sketchtree_wal_replayed_batches_total",
                "Batches replayed from the write-ahead log at startup",
            ),
            wal_torn: registry.counter(
                "sketchtree_wal_torn_tail_total",
                "Torn or undecodable write-ahead-log tails truncated at recovery",
            ),
            merges: registry.counter(
                "sktp_merges_total",
                "Shard snapshots merged into the live synopsis",
            ),
            merge_bytes: registry.counter(
                "sktp_merge_bytes_total",
                "Cumulative size in bytes of merged shard snapshots",
            ),
            subscriptions_active: registry.gauge(
                "sketchtree_subscriptions_active",
                "Live standing-query subscriptions across all connections",
            ),
            push_updates: registry.counter(
                "sktp_push_updates_total",
                "EstimateUpdate frames queued to subscribers",
            ),
            slow_subscriber_evictions: registry.counter(
                "sktp_slow_subscriber_evictions_total",
                "Subscriptions evicted because their outbound queue stayed full",
            ),
            standing_eval_seconds: registry.histogram(
                "sketchtree_standing_eval_seconds",
                "Seconds per batch re-evaluating every registered standing query",
                LATENCY_BUCKETS,
            ),
            push_seconds: registry.histogram(
                "sketchtree_push_seconds",
                "Seconds per batch fanning evaluated results out to subscriber queues",
                LATENCY_BUCKETS,
            ),
            cache_hits: registry.counter(
                "sketchtree_query_cache_hits_total",
                "Ad-hoc query answers served from the epoch-keyed result cache",
            ),
            cache_misses: registry.counter(
                "sketchtree_query_cache_misses_total",
                "Ad-hoc query answers that had to be computed (cache miss or stale epoch)",
            ),
            request_seconds,
            other_request_seconds,
            health_counter_fill: health_gauge(
                "sketchtree_sketch_counter_fill_ratio",
                "Fraction of sketch counters with a nonzero value",
            ),
            health_counters_nonzero: health_gauge(
                "sketchtree_sketch_counters_nonzero",
                "Sketch counters with a nonzero value",
            ),
            health_counters_total: health_gauge(
                "sketchtree_sketch_counters_total",
                "Total sketch counters (virtual_streams * s1 * s2)",
            ),
            health_topk_fill: health_gauge(
                "sketchtree_topk_fill_ratio",
                "Fraction of top-k heavy-hitter slots in use",
            ),
            health_topk_tracked: health_gauge(
                "sketchtree_topk_tracked",
                "Values currently tracked by the top-k strategy",
            ),
            health_topk_capacity: health_gauge(
                "sketchtree_topk_capacity",
                "Total top-k slots (virtual_streams * k)",
            ),
            health_virtual_streams: health_gauge(
                "sketchtree_virtual_streams",
                "Virtual-stream partition count",
            ),
            health_partition_imbalance: health_gauge(
                "sketchtree_partition_imbalance_ratio",
                "Max over mean inserts per virtual-stream partition (1.0 = perfectly even)",
            ),
            health_values_processed: health_gauge(
                "sketchtree_values_processed",
                "Pattern values processed by the synopsis since its state began",
            ),
            health_residual_self_join: health_gauge(
                "sketchtree_residual_self_join",
                "Estimated residual self-join size SJ(S) — drives the Theorem 1 error bound",
            ),
            health_estimator_spread: health_gauge(
                "sketchtree_estimator_spread_ratio",
                "Relative spread of the s2 group-mean SJ estimates (variance proxy)",
            ),
            health_memory_bytes: health_gauge(
                "sketchtree_memory_bytes",
                "Synopsis memory in bytes (counters + seeds + top-k + summary)",
            ),
            health_trees: health_gauge("sketchtree_trees_processed", "Trees ingested"),
            health_patterns: health_gauge(
                "sketchtree_patterns_processed",
                "Pattern instances processed",
            ),
            health_labels: health_gauge("sketchtree_labels", "Distinct labels interned"),
            registry,
        })
    }

    /// Records one handled request: its kind byte and wall-clock time from
    /// decode to response write.
    pub fn observe_request(&self, kind: u8, elapsed: Duration) {
        let hist = self
            .request_seconds
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h)
            .unwrap_or(&self.other_request_seconds);
        hist.observe_duration(elapsed);
    }

    /// Recomputes the sketch-health gauges from the shared synopsis (one
    /// shared read lock; call per scrape, not per request).
    pub fn refresh_health(&self, shared: &SharedSketchTree) {
        let h = shared.read(|s| s.sketch_health());
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        self.health_counter_fill.set(ratio(h.counters_nonzero, h.counters_total));
        self.health_counters_nonzero.set(h.counters_nonzero as f64);
        self.health_counters_total.set(h.counters_total as f64);
        self.health_topk_fill.set(ratio(h.topk_tracked, h.topk_capacity));
        self.health_topk_tracked.set(h.topk_tracked as f64);
        self.health_topk_capacity.set(h.topk_capacity as f64);
        self.health_virtual_streams.set(h.partition_inserts.len() as f64);
        self.health_partition_imbalance.set(partition_imbalance(&h.partition_inserts));
        self.health_values_processed.set(h.values_processed as f64);
        self.health_residual_self_join.set(h.residual_self_join);
        self.health_estimator_spread.set(h.estimator_spread);
        self.health_memory_bytes.set(h.memory_bytes as f64);
        self.health_trees.set(h.trees_processed as f64);
        self.health_patterns.set(h.patterns_processed as f64);
        self.health_labels.set(h.labels as f64);
    }

    /// Renders the exposition: Prometheus text or JSON.
    pub fn render(&self, json: bool) -> String {
        if json {
            self.registry.render_json()
        } else {
            self.registry.render_text()
        }
    }

    /// The underlying registry (tests and extensions).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Max-over-mean inserts per partition: `1.0` when the virtual-stream
/// routing is perfectly even, growing as partitions skew.  Zero before any
/// insert.
fn partition_imbalance(inserts: &[u64]) -> f64 {
    let total: u64 = inserts.iter().copied().fold(0u64, u64::saturating_add);
    if total == 0 || inserts.is_empty() {
        return 0.0;
    }
    let mean = total as f64 / inserts.len() as f64;
    let max = inserts.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

/// Decrements `sktp_connections_active` when a connection handler exits —
/// by any path, including panics unwinding through the worker.
#[derive(Debug)]
pub struct ConnectionGuard {
    active: Arc<Gauge>,
}

impl ConnectionGuard {
    /// Marks a connection open; the returned guard marks it closed on
    /// drop.
    pub fn open(metrics: &ServerMetrics) -> Self {
        metrics.connections_accepted.inc();
        metrics.connections_active.inc();
        Self { active: metrics.connections_active.clone() }
    }
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.active.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_core::{SketchTree, SketchTreeConfig};

    #[test]
    fn all_request_opcodes_have_histograms() {
        let m = ServerMetrics::new();
        for &k in REQUEST_KINDS {
            m.observe_request(k, Duration::from_micros(50));
        }
        m.observe_request(0x66, Duration::from_micros(50)); // unknown
        let text = m.render(false);
        for &k in REQUEST_KINDS {
            let line = format!("sktp_request_seconds_count{{opcode=\"{}\"}} 1", kind_name(k));
            assert!(text.contains(&line), "missing {line}");
        }
        assert!(text.contains("sktp_request_seconds_count{opcode=\"other\"} 1"));
    }

    #[test]
    fn connection_guard_tracks_active() {
        let m = ServerMetrics::new();
        {
            let _g1 = ConnectionGuard::open(&m);
            let _g2 = ConnectionGuard::open(&m);
            assert_eq!(m.connections_active.get(), 2.0);
        }
        assert_eq!(m.connections_active.get(), 0.0);
        assert_eq!(m.connections_accepted.get(), 2);
    }

    #[test]
    fn refresh_health_populates_gauges() {
        let m = ServerMetrics::new();
        let shared = SharedSketchTree::new(SketchTree::new(SketchTreeConfig::default()));
        let a = shared.with_labels(|l| l.intern("A"));
        let t = sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(a)]);
        for _ in 0..10 {
            shared.ingest(&t);
        }
        m.refresh_health(&shared);
        let text = m.render(false);
        assert!(text.contains("sketchtree_trees_processed 10"));
        assert!(!text.contains("sketchtree_values_processed 0\n"));
        // JSON render is parseable-ish: starts and ends with braces.
        let json = m.render(true);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn partition_imbalance_math() {
        assert_eq!(partition_imbalance(&[]), 0.0);
        assert_eq!(partition_imbalance(&[0, 0]), 0.0);
        assert_eq!(partition_imbalance(&[5, 5, 5]), 1.0);
        assert_eq!(partition_imbalance(&[0, 0, 30]), 3.0);
    }
}
