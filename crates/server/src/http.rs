//! A minimal HTTP/1.0 exposition endpoint for scrapers.
//!
//! Serves exactly three routes — `GET /metrics` (Prometheus text 0.0.4),
//! `GET /metrics.json` (the JSON rendering) and `GET /healthz` (liveness) —
//! on a dedicated listener so scrape traffic never competes with SKTP
//! worker threads.  Requests are handled serially on the listener thread:
//! a scrape every few seconds from one or two collectors is the design
//! load, and serial handling keeps the code free of pool plumbing.
//!
//! This is deliberately *not* a general HTTP server: no keep-alive, no
//! chunked encoding, no request bodies.  Anything that is not a `GET` for
//! a known route gets a 404/405 and the connection closes.

use crate::metrics::ServerMetrics;
use sketchtree_core::concurrent::SharedSketchTree;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head we will buffer; enough for any scraper's
/// `GET /metrics HTTP/1.x` plus headers we ignore.
const MAX_REQUEST_HEAD: usize = 4096;

/// A running metrics endpoint; stops (and joins its thread) on
/// [`MetricsHttp::stop`] or drop.
#[derive(Debug)]
pub(crate) struct MetricsHttp {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsHttp {
    /// Binds `addr` and starts serving scrapes in a background thread.
    pub(crate) fn start(
        addr: SocketAddr,
        metrics: Arc<ServerMetrics>,
        shared: SharedSketchTree,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let actual = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("sktp-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A stalled scraper must not wedge the endpoint.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    let _ = serve_one(stream, &metrics, &shared);
                }
            })?;
        Ok(Self { addr: actual, shutdown, handle: Some(handle) })
    }

    /// The bound address (resolved port when `addr` asked for port 0).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub(crate) fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request head and writes one response.
fn serve_one(
    mut stream: TcpStream,
    metrics: &ServerMetrics,
    shared: &SharedSketchTree,
) -> io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the head, connection close, or cap.
    loop {
        let n = io::Read::read(&mut stream, &mut buf)?;
        if n == 0 {
            break;
        }
        // Only the boundary region can contain a terminator that involves
        // the new bytes: the last 3 previously-buffered bytes plus what was
        // just read.  Rescanning the whole head after every read would be
        // O(n²) against a slow-trickling scraper.
        let scan_from = head.len().saturating_sub(3);
        head.extend_from_slice(buf.get(..n).unwrap_or_default());
        let tail = head.get(scan_from..).unwrap_or_default();
        if tail.windows(4).any(|w| w == b"\r\n\r\n") || tail.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() >= MAX_REQUEST_HEAD {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut parts = text.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "method not allowed\n");
    }
    // Strip any query string; scrapers sometimes append one.
    let route = path.split('?').next().unwrap_or(path);
    match route {
        "/metrics" => {
            metrics.refresh_health(shared);
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &metrics.render(false),
            )
        }
        "/metrics.json" => {
            metrics.refresh_health(shared);
            respond(&mut stream, "200 OK", "application/json", &metrics.render(true))
        }
        "/healthz" => {
            let trees = shared.trees_processed();
            let body = format!("{{\"status\":\"ok\",\"trees_processed\":{trees}}}\n");
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Writes a complete HTTP/1.0 response and closes (no keep-alive).
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_core::{SketchTree, SketchTreeConfig};
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let metrics = ServerMetrics::new();
        let shared = SharedSketchTree::new(SketchTree::new(SketchTreeConfig::default()));
        let a = shared.with_labels(|l| l.intern("A"));
        shared.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(a)]));
        let mut http = MetricsHttp::start(
            "127.0.0.1:0".parse().expect("addr"),
            metrics.clone(),
            shared.clone(),
        )
        .expect("bind");
        let addr = http.addr();

        let resp = get(addr, "/metrics");
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        assert!(resp.contains("sketchtree_trees_processed 1"), "{resp}");

        let resp = get(addr, "/metrics.json");
        assert!(resp.contains("application/json"));

        let resp = get(addr, "/healthz");
        assert!(resp.contains("\"status\":\"ok\""));
        assert!(resp.contains("\"trees_processed\":1"));

        let resp = get(addr, "/nope");
        assert!(resp.starts_with("HTTP/1.0 404"));

        // POST is refused.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.0 405"));

        // A head trickled one byte per write still terminates correctly:
        // the boundary-region scan must see a "\r\n\r\n" that straddles
        // reads (the terminator never arrives inside a single read here).
        let mut s = TcpStream::connect(addr).expect("connect");
        for b in b"GET /healthz HTTP/1.0\r\nX-Pad: 1\r\n\r\n" {
            s.write_all(std::slice::from_ref(b)).expect("send byte");
            s.flush().expect("flush");
        }
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        assert!(out.contains("\"status\":\"ok\""), "{out}");

        http.stop();
    }
}
