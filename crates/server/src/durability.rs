//! Recover-on-start: checkpoint restore plus write-ahead-log replay.
//!
//! The server's durability contract is *log-before-ack*: when a WAL is
//! configured, every ingest batch is appended (and, at group-commit
//! boundaries, fsynced) to the log before the `Ingested` response is
//! written.  Checkpoints record the sequence number of the last logged
//! batch they cover ([`sketchtree_core::SketchTree::wal_seq`], snapshot
//! format v2), and rotate the log once the rename is durable — so at any
//! instant, `checkpoint + WAL tail` reconstructs exactly the acked
//! stream.
//!
//! Recovery is a short state machine, run once by
//! [`crate::server::Server::start`]:
//!
//! 1. **Clean stale temp files.**  A crash between a checkpoint's write
//!    and its rename leaves `<checkpoint>.tmp` behind; it is deleted
//!    (and counted in `sketchtree_restore_stale_tmp_total`).
//! 2. **Restore the checkpoint**, if one exists.  A corrupt or torn
//!    checkpoint is quarantined — renamed to `<checkpoint>.corrupt`,
//!    logged, counted in `sketchtree_restore_corrupt_total` — and the
//!    synopsis restarts empty for the WAL to rebuild.  Without a WAL
//!    there is nothing to rebuild from, so the corruption stays a hard
//!    startup error rather than silently discarding data.
//! 3. **Open and repair the WAL.**  Torn tail frames (short write, CRC
//!    mismatch — the expected power-cut signature) are physically
//!    truncated; the intact prefix survives.
//! 4. **Replay the tail**: every frame with a sequence number past the
//!    checkpoint's cursor is decoded and re-ingested through the same
//!    intern-remap-ingest path the serving ingest uses, so the replayed
//!    synopsis is bit-identical to one that ingested the batches live.
//!    A CRC-valid frame that still fails batch decoding is treated like
//!    a torn tail: it and everything after it are truncated, never a
//!    startup error.
//!
//! See `DESIGN.md` §10 for the full guarantee table per fsync setting.

use crate::metrics::ServerMetrics;
use crate::server::remap_tree;
use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::snapshot::read_snapshot;
use sketchtree_wal::{decode_batch, Wal};
use sketchtree_tree::{Label, Tree};
use std::io;
use std::path::{Path, PathBuf};

/// Write-ahead-log settings for
/// [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Log file path (created if absent).  Keep it on the same
    /// filesystem as the checkpoint so both share one durability domain.
    pub path: PathBuf,
    /// Group-commit knob: `1` fsyncs every append (no acked batch is
    /// ever lost), `n` fsyncs every `n`-th append (a power cut may lose
    /// up to `n - 1` acked batches), `0` never fsyncs from the append
    /// path (benchmarking only).
    pub fsync_every: u32,
}

impl WalConfig {
    /// Full-durability configuration (`fsync_every = 1`) at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), fsync_every: 1 }
    }
}

/// What recovery found and did; returned by [`recover`] and useful in
/// crash-injection tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// A checkpoint was loaded successfully.
    pub restored_from_checkpoint: bool,
    /// A stale `<checkpoint>.tmp` from a mid-checkpoint crash was
    /// removed.
    pub stale_tmp_removed: bool,
    /// A corrupt checkpoint was quarantined at this path.
    pub quarantined_checkpoint: Option<PathBuf>,
    /// WAL frames replayed into the synopsis.
    pub replayed_batches: u64,
    /// Trees those frames carried.
    pub replayed_trees: u64,
    /// A torn or undecodable WAL tail was truncated.
    pub torn_tail: bool,
}

/// Appends `.corrupt` to the file name (keeping the original extension
/// visible: `state.snap` → `state.snap.corrupt`).
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    PathBuf::from(name)
}

/// Runs the recovery state machine described in the module docs and
/// returns the recovered synopsis, the opened log (when configured) and
/// a report of what happened.  Exposed publicly so crash-injection
/// tests can drive recovery file-by-file without binding a TCP server.
pub fn recover(
    checkpoint_path: Option<&Path>,
    wal_cfg: Option<&WalConfig>,
    fresh: &SketchTreeConfig,
    metrics: &ServerMetrics,
) -> io::Result<(SketchTree, Option<Wal>, RecoveryReport)> {
    let mut report = RecoveryReport::default();

    // 1. A leftover temp file is dead weight at best and a confusing
    // near-duplicate of the live checkpoint at worst; it can never be
    // trusted (the rename never happened, so neither did the publish).
    if let Some(path) = checkpoint_path {
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
            metrics.restore_stale_tmp.inc();
            report.stale_tmp_removed = true;
            eprintln!(
                "sketchtree: removed stale checkpoint temp file {} (crash between write and rename)",
                tmp.display()
            );
        }
    }

    // 2. Checkpoint restore, with quarantine when the WAL can rebuild.
    let mut st = match checkpoint_path {
        Some(path) if path.exists() => {
            let bytes = std::fs::read(path)?;
            match read_snapshot(&bytes) {
                Ok(restored) => {
                    metrics.restores.inc();
                    report.restored_from_checkpoint = true;
                    restored
                }
                Err(e) if wal_cfg.is_some() => {
                    let corrupt = quarantine_path(path);
                    std::fs::rename(path, &corrupt)?;
                    sketchtree_wal::fsync_parent_dir(path)?;
                    metrics.restore_corrupt.inc();
                    eprintln!(
                        "sketchtree: checkpoint {} is corrupt ({e}); quarantined as {} and rebuilding from the write-ahead log",
                        path.display(),
                        corrupt.display()
                    );
                    report.quarantined_checkpoint = Some(corrupt);
                    SketchTree::new(fresh.clone())
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("checkpoint {}: {e}", path.display()),
                    ))
                }
            }
        }
        _ => SketchTree::new(fresh.clone()),
    };

    // 3 + 4. Open (repairing any torn tail) and replay past the cursor.
    let wal = match wal_cfg {
        None => None,
        Some(cfg) => {
            let (mut wal, scan) = Wal::open(&cfg.path, cfg.fsync_every).map_err(io::Error::from)?;
            if let Some(torn) = scan.torn {
                metrics.wal_torn.inc();
                report.torn_tail = true;
                eprintln!(
                    "sketchtree: wal {} had a torn tail at byte {} ({}); truncated — this is the normal crash signature, acked durable batches are intact",
                    cfg.path.display(),
                    torn.offset,
                    torn.reason
                );
            }
            let cursor = st.wal_seq();
            for frame in &scan.frames {
                if frame.seq <= cursor {
                    // Already folded into the checkpoint (a crash between
                    // the checkpoint rename and the log rotation leaves
                    // such frames behind — they must not double-count).
                    continue;
                }
                match decode_batch(&frame.batch) {
                    Ok((labels, trees)) => {
                        replay_batch(&mut st, &labels, &trees);
                        st.set_wal_seq(frame.seq);
                        metrics.wal_replayed.inc();
                        report.replayed_batches += 1;
                        report.replayed_trees += trees.len() as u64;
                    }
                    Err(e) => {
                        // CRC-valid yet undecodable: nothing after this
                        // frame can be trusted either.  Same policy as a
                        // torn tail — truncate and continue serving.
                        metrics.wal_torn.inc();
                        report.torn_tail = true;
                        eprintln!(
                            "sketchtree: wal {} frame seq {} fails batch decoding ({e}); truncating log at byte {}",
                            cfg.path.display(),
                            frame.seq,
                            frame.offset
                        );
                        wal.truncate_to(frame.offset)?;
                        break;
                    }
                }
            }
            // A rotation-then-crash can leave the log empty while the
            // snapshot's cursor is far ahead; never reuse those numbers.
            wal.bump_seq_past(st.wal_seq());
            metrics.wal_size.set(wal.size_bytes() as f64);
            Some(wal)
        }
    };

    Ok((st, wal, report))
}

/// Re-ingests one logged batch exactly as the serving path would have:
/// intern the batch-local names into the synopsis' table in batch order,
/// remap each tree positionally, ingest tree by tree.  Bit-identical to
/// the live `ingest_batch` path by the workspace's parallel-ingest
/// parity invariant.
fn replay_batch(st: &mut SketchTree, labels: &[String], trees: &[Tree]) {
    let map: Vec<Label> = {
        let table = st.labels_mut();
        labels.iter().map(|name| table.intern(name)).collect()
    };
    for tree in trees {
        st.ingest(&remap_tree(tree, &map));
    }
}
