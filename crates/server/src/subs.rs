//! Subscription dispatch: the bridge between the transport-agnostic
//! [`QueryRegistry`] and per-connection push queues.
//!
//! One [`Subscriptions`] instance lives for the server's lifetime.  Each
//! `Subscribe` frame registers its query (refcounted — duplicate
//! subscriptions to one canonical query share a single compiled plan) and
//! files a subscription entry holding a clone of that connection's
//! bounded push sender.  The [`SharedSketchTree`] batch hook calls
//! [`Subscriptions::broadcast`] once per ingest batch or merge, still
//! under the shared read lock, so every pushed estimate is evaluated at
//! exactly the epoch it reports.
//!
//! Delivery is **at-most-once per epoch** and deliberately lossy for slow
//! readers: updates are queued with a non-blocking `try_send`, and a
//! subscriber whose queue is full (or whose pusher thread died) is
//! *evicted* — its entry removed, its registration released — rather than
//! allowed to wedge the broadcast and, transitively, every ingest.  A
//! healthy subscriber that merely lags keeps its queue below the bound
//! because each update frame is small and the pusher drains continuously.
//!
//! Lock order is `SharedSketchTree` inner → registry mutex → table mutex,
//! always in that direction, and the two inner mutexes are never nested:
//! every method registers or unregisters with the registry strictly
//! outside the table guard (subscribe registers first and rolls back on a
//! cap rejection; removal paths collect doomed entries under the table
//! lock, drop it, then release their registrations).  No callback ever
//! re-enters the shared handle, so the hook cannot deadlock against
//! ingest.  The L6 lock-order lint enforces the acyclicity workspace-wide.
//!
//! [`QueryRegistry`]: sketchtree_standing::QueryRegistry
//! [`SharedSketchTree`]: sketchtree_core::concurrent::SharedSketchTree

use crate::metrics::ServerMetrics;
use crate::wire::Response;
use sketchtree_core::sketchtree::SketchTree;
use sketchtree_standing::{QueryRegistry, QuerySpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One live subscription: which connection owns it, which canonical query
/// it watches, and the bounded sender feeding that connection's pusher.
struct SubEntry {
    conn: u64,
    key: String,
    reg: u64,
    tx: SyncSender<Response>,
}

/// The server-wide subscription table plus the standing-query registry it
/// feeds.  See the module docs for the delivery and eviction contract.
pub struct Subscriptions {
    registry: QueryRegistry,
    table: Mutex<HashMap<u64, SubEntry>>,
    next_sub: AtomicU64,
    max_per_conn: usize,
    metrics: Arc<ServerMetrics>,
    /// Serializes [`Subscriptions::broadcast`] and records the last epoch
    /// pushed.  Batch hooks run under the *shared* read lock, so two
    /// connections' batches can fire concurrently; without this gate
    /// their per-subscription enqueues interleave and a subscriber can
    /// see epochs go backwards (observed by the loadgen harness).  The
    /// gate is the outermost lock in this module: it is only ever taken
    /// at the top of `broadcast`, before the registry or table locks, so
    /// the documented registry → table order is unchanged.
    broadcast_gate: Mutex<u64>,
}

impl Subscriptions {
    /// Creates an empty table capping each connection at `max_per_conn`
    /// live subscriptions.
    pub fn new(metrics: Arc<ServerMetrics>, max_per_conn: usize) -> Self {
        Self {
            registry: QueryRegistry::new(),
            table: Mutex::new(HashMap::new()),
            next_sub: AtomicU64::new(0),
            max_per_conn: max_per_conn.max(1),
            metrics,
            broadcast_gate: Mutex::new(0),
        }
    }

    /// Registers `spec` for connection `conn`, wiring pushed updates
    /// through `tx`.  Returns the subscription id the client quotes in
    /// `Unsubscribe`, or an error when the connection is at its cap.
    pub fn subscribe(
        &self,
        conn: u64,
        spec: QuerySpec,
        tx: SyncSender<Response>,
    ) -> Result<u64, String> {
        let key = spec.key();
        // Register before taking the table lock: the documented order is
        // registry mutex → table mutex, so the table guard must never be
        // live across a registry call.
        let reg = self.registry.register(spec);
        let mut table = self.lock_table();
        if table.values().filter(|e| e.conn == conn).count() >= self.max_per_conn {
            drop(table);
            // Roll back — a cap rejection must not leak a plan refcount.
            self.registry.unregister(reg);
            return Err(format!(
                "connection already holds {} subscriptions (the per-connection cap)",
                self.max_per_conn
            ));
        }
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed) + 1;
        table.insert(id, SubEntry { conn, key, reg, tx });
        drop(table);
        self.metrics.subscriptions_active.inc();
        Ok(id)
    }

    /// Drops subscription `id` if connection `conn` owns it.  Returns
    /// `false` for unknown ids or ids owned by another connection (a
    /// client cannot cancel someone else's subscription).
    pub fn unsubscribe(&self, conn: u64, id: u64) -> bool {
        let mut table = self.lock_table();
        if !matches!(table.get(&id), Some(entry) if entry.conn == conn) {
            return false;
        }
        let entry = table.remove(&id);
        drop(table);
        if let Some(entry) = entry {
            self.registry.unregister(entry.reg);
            self.metrics.subscriptions_active.dec();
        }
        true
    }

    /// Reaps every subscription owned by connection `conn` — called when
    /// its handler exits by any path, so a disconnect can never leak a
    /// table entry or a registry refcount.
    pub fn drop_connection(&self, conn: u64) {
        let mut table = self.lock_table();
        let ids: Vec<u64> = table
            .iter()
            .filter(|(_, e)| e.conn == conn)
            .map(|(&id, _)| id)
            .collect();
        let doomed: Vec<SubEntry> =
            ids.into_iter().filter_map(|id| table.remove(&id)).collect();
        drop(table);
        for entry in doomed {
            self.registry.unregister(entry.reg);
            self.metrics.subscriptions_active.dec();
        }
    }

    /// Re-evaluates every registered query against `st` and queues one
    /// [`Response::EstimateUpdate`] per live subscription.  Called from
    /// the batch hook, under the shared read lock.
    ///
    /// Evaluation cost is one pass over *distinct* registered queries —
    /// timed by `sketchtree_standing_eval_seconds`, whose sample count
    /// therefore equals the number of broadcast *epochs* regardless of how
    /// many subscribers read the results.  Fan-out is non-blocking: a
    /// full or dead queue evicts that subscriber on the spot.
    ///
    /// Broadcasts are serialized by `broadcast_gate`, which also makes
    /// per-subscription epochs *strictly increasing*: when concurrent
    /// batches race, the hook that loses the gate sees the same
    /// post-batch state the winner already pushed (the caller holds the
    /// shared read lock, so `st` is the current synopsis, not a stale
    /// snapshot) and skips the redundant broadcast.
    pub fn broadcast(&self, st: &SketchTree) {
        if self.registry.registrations() == 0 {
            return;
        }
        let epoch = st.epoch();
        let mut gate = self.broadcast_gate.lock().unwrap_or_else(|e| e.into_inner());
        if *gate >= epoch {
            // A concurrent broadcast already pushed this state (or newer:
            // epochs only advance, and its enqueues happened before ours
            // would).  Pushing now would deliver out-of-order estimates.
            return;
        }
        *gate = epoch;
        let eval_started = Instant::now();
        let results: HashMap<_, _> = self.registry.evaluate_all(st).into_iter().collect();
        self.metrics.standing_eval_seconds.observe_duration(eval_started.elapsed());

        let push_started = Instant::now();
        let mut table = self.lock_table();
        let mut evicted: Vec<u64> = Vec::new();
        for (&id, entry) in table.iter() {
            let result = match results.get(&entry.key) {
                Some(r) => r.clone(),
                // A subscription filed after evaluate_all snapshotted the
                // registry; it catches the next batch.
                None => continue,
            };
            let update = Response::EstimateUpdate { id, epoch, result };
            match entry.tx.try_send(update) {
                Ok(()) => self.metrics.push_updates.inc(),
                Err(_) => evicted.push(id), // full or disconnected
            }
        }
        let evicted: Vec<SubEntry> =
            evicted.into_iter().filter_map(|id| table.remove(&id)).collect();
        drop(table);
        for entry in evicted {
            self.registry.unregister(entry.reg);
            self.metrics.subscriptions_active.dec();
            self.metrics.slow_subscriber_evictions.inc();
        }
        self.metrics.push_seconds.observe_duration(push_started.elapsed());
    }

    /// Live subscription count (table entries).
    pub fn active(&self) -> usize {
        self.lock_table().len()
    }

    /// Whether connection `conn` currently holds any subscription (a
    /// subscribed connection is exempt from the idle-close policy — it
    /// legitimately goes quiet and just reads pushes).
    pub fn connection_active(&self, conn: u64) -> bool {
        self.lock_table().values().any(|e| e.conn == conn)
    }

    /// Distinct compiled plans resident in the registry.
    pub fn distinct_queries(&self) -> usize {
        self.registry.distinct_queries()
    }

    /// Total compiled-plan compilations performed since start — constant
    /// across batches once the stream's structure goes quiet.
    pub fn compilations(&self) -> u64 {
        self.registry.compilations()
    }

    fn lock_table(&self) -> MutexGuard<'_, HashMap<u64, SubEntry>> {
        self.table.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_core::sketchtree::{SketchTreeConfig, SketchTree};
    use sketchtree_standing::QueryMode;
    use std::sync::mpsc::sync_channel;

    fn subs() -> Subscriptions {
        Subscriptions::new(ServerMetrics::new(), 8)
    }

    fn spec(text: &str) -> QuerySpec {
        QuerySpec::parse(QueryMode::Ordered, text).unwrap()
    }

    fn synopsis() -> SketchTree {
        let mut st = SketchTree::new(SketchTreeConfig::default());
        let a = st.labels_mut().intern("A");
        let b = st.labels_mut().intern("B");
        st.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(b)]));
        st
    }

    #[test]
    fn slow_subscriber_is_evicted_not_waited_for() {
        // Deterministic stand-in for a wedged reader: a capacity-1 queue
        // that nothing drains.  The first broadcast fills it; the second
        // finds it full and must evict instead of blocking the batch.
        // The epoch must advance between broadcasts (as a real batch
        // would): the broadcast gate skips same-epoch re-broadcasts.
        let s = subs();
        let (tx, _rx) = sync_channel::<Response>(1);
        let id = s.subscribe(1, spec("A(B)"), tx).unwrap();
        let mut st = synopsis();
        s.broadcast(&st);
        assert_eq!(s.active(), 1, "first update fits the queue");
        let a = st.labels_mut().intern("A");
        let b = st.labels_mut().intern("B");
        st.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(b)]));
        s.broadcast(&st);
        assert_eq!(s.active(), 0, "full queue ⇒ evicted");
        assert_eq!(s.distinct_queries(), 0, "eviction releases the plan");
        assert_eq!(s.metrics.slow_subscriber_evictions.get(), 1);
        assert_eq!(s.metrics.subscriptions_active.get(), 0.0);
        assert!(!s.unsubscribe(1, id), "already gone");
    }

    #[test]
    fn dead_receiver_is_evicted_on_next_broadcast() {
        let s = subs();
        let (tx, rx) = sync_channel::<Response>(16);
        s.subscribe(1, spec("A(B)"), tx).unwrap();
        drop(rx); // pusher died / connection torn down out from under us
        s.broadcast(&synopsis());
        assert_eq!(s.active(), 0);
        assert_eq!(s.metrics.slow_subscriber_evictions.get(), 1);
    }

    #[test]
    fn duplicate_subscriptions_share_one_plan_and_refcount_it() {
        let s = subs();
        let (tx, rx) = sync_channel::<Response>(16);
        let id1 = s.subscribe(1, spec("A(B)"), tx.clone()).unwrap();
        let id2 = s.subscribe(2, spec("A(B)"), tx).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(s.active(), 2);
        assert_eq!(s.distinct_queries(), 1, "one compiled plan for both");

        let st = synopsis();
        s.broadcast(&st);
        let (a, b) = (rx.recv().unwrap(), rx.recv().unwrap());
        // Both subscriptions get the shared evaluation, to the bit.
        match (a, b) {
            (
                Response::EstimateUpdate { epoch: e1, result: Ok(v1), .. },
                Response::EstimateUpdate { epoch: e2, result: Ok(v2), .. },
            ) => {
                assert_eq!(e1, e2);
                assert_eq!(v1.to_bits(), v2.to_bits());
            }
            other => panic!("expected two updates, got {other:?}"),
        }

        assert!(s.unsubscribe(1, id1));
        assert_eq!(s.distinct_queries(), 1, "still referenced by the other");
        assert!(s.unsubscribe(2, id2));
        assert_eq!(s.distinct_queries(), 0);
    }

    #[test]
    fn unsubscribe_requires_the_owning_connection() {
        let s = subs();
        let (tx, _rx) = sync_channel::<Response>(16);
        let id = s.subscribe(7, spec("A(B)"), tx).unwrap();
        assert!(!s.unsubscribe(8, id), "someone else's subscription");
        assert!(s.unsubscribe(7, id));
    }

    #[test]
    fn drop_connection_reaps_only_that_connection() {
        let s = subs();
        let (tx, _rx) = sync_channel::<Response>(16);
        s.subscribe(1, spec("A(B)"), tx.clone()).unwrap();
        s.subscribe(1, spec("A(A)"), tx.clone()).unwrap();
        let keep = s.subscribe(2, spec("A(B)"), tx).unwrap();
        s.drop_connection(1);
        assert_eq!(s.active(), 1);
        assert_eq!(s.metrics.subscriptions_active.get(), 1.0);
        assert!(s.unsubscribe(2, keep));
    }

    #[test]
    fn per_connection_cap_is_enforced() {
        let s = Subscriptions::new(ServerMetrics::new(), 2);
        let (tx, _rx) = sync_channel::<Response>(16);
        s.subscribe(1, spec("A(B)"), tx.clone()).unwrap();
        s.subscribe(1, spec("A(A)"), tx.clone()).unwrap();
        let err = s.subscribe(1, spec("B(A)"), tx.clone()).unwrap_err();
        assert!(err.contains("cap"), "{err}");
        // Another connection is unaffected.
        s.subscribe(2, spec("B(A)"), tx).unwrap();
    }
}
