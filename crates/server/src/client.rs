//! Blocking client for the `SKTP` protocol.
//!
//! One [`Client`] wraps one connection and lazily (re)establishes it:
//! connect failures and broken sockets trigger reconnection with capped
//! exponential backoff.  Idempotent requests (queries, stats, pings) are
//! retried transparently after a reconnect; ingest batches are **not**
//! retried once their frame may have reached the server, because the
//! synopsis has no deduplication — a retry would double-count.  Callers
//! that prefer at-least-once delivery can loop on the error themselves.

use crate::wire::{
    read_frame_patient, Frame, Request, Response, Stats, SubscribeMode, WireError,
    DEFAULT_MAX_FRAME,
};
use sketchtree_tree::Tree;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// Connection could not be (re)established or broke mid-request.
    Io(io::Error),
    /// The server's reply violated the protocol.
    Wire(WireError),
    /// The server answered with an error frame.
    Server(String),
    /// The server answered with a frame of the wrong type.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Wire(e) => write!(f, "protocol: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

/// Summary returned by ingest calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSummary {
    /// Trees added by this batch.
    pub trees: u64,
    /// Pattern instances added by this batch.
    pub patterns: u64,
    /// Server-wide tree total after the batch.
    pub total_trees: u64,
    /// Server-wide pattern total after the batch.
    pub total_patterns: u64,
}

/// One pushed standing-query estimate, as delivered by
/// [`Client::next_update`].
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// The subscription this update belongs to (from
    /// [`Client::subscribe`]).
    pub id: u64,
    /// The synopsis epoch the estimate was evaluated at.
    pub epoch: u64,
    /// The estimate, or why this query cannot currently be answered
    /// (e.g. a wildcard expansion past the pattern cap).
    pub result: Result<f64, String>,
}

/// A blocking `SKTP` client.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    max_frame: u32,
    read_timeout: Duration,
    response_timeout: Duration,
    max_reconnects: u32,
    /// Pushed updates that arrived interleaved with request replies,
    /// buffered for [`Client::next_update`] in arrival order.
    pending: VecDeque<Update>,
}

impl Client {
    /// Connects to `addr` (first resolved address wins).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "no address"))?;
        let mut client = Self {
            addr,
            stream: None,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(250),
            response_timeout: Duration::from_secs(30),
            max_reconnects: 5,
            pending: VecDeque::new(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Caps how long one request may wait for its reply (default 30s).
    pub fn set_response_timeout(&mut self, timeout: Duration) {
        self.response_timeout = timeout;
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping, true)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", other)),
        }
    }

    /// Ingests a batch of XML documents (not retried after send — see the
    /// module docs on at-most-once ingest).
    pub fn ingest_xml(&mut self, docs: &[String]) -> Result<IngestSummary, ClientError> {
        self.ingest(&Request::IngestXml(docs.to_vec()))
    }

    /// Ingests pre-built trees whose labels index into `labels`.
    pub fn ingest_trees(
        &mut self,
        labels: Vec<String>,
        trees: Vec<Tree>,
    ) -> Result<IngestSummary, ClientError> {
        self.ingest(&Request::IngestTrees { labels, trees })
    }

    fn ingest(&mut self, req: &Request) -> Result<IngestSummary, ClientError> {
        match self.request(req, false)? {
            Response::Ingested { trees, patterns, total_trees, total_patterns } => {
                Ok(IngestSummary { trees, patterns, total_trees, total_patterns })
            }
            other => Err(unexpected("ingest summary", other)),
        }
    }

    /// `COUNT_ord` of a textual pattern.
    pub fn count_ordered(&mut self, pattern: &str) -> Result<f64, ClientError> {
        self.count(pattern, false)
    }

    /// Unordered `COUNT` of a textual pattern.
    pub fn count_unordered(&mut self, pattern: &str) -> Result<f64, ClientError> {
        self.count(pattern, true)
    }

    fn count(&mut self, pattern: &str, unordered: bool) -> Result<f64, ClientError> {
        let req = Request::Count { unordered, pattern: pattern.to_string() };
        match self.request(&req, true)? {
            Response::Estimate(v) => Ok(v),
            other => Err(unexpected("estimate", other)),
        }
    }

    /// Evaluates a `+,-,*` expression over counts.
    pub fn expr(&mut self, expression: &str) -> Result<f64, ClientError> {
        match self.request(&Request::Expr(expression.to_string()), true)? {
            Response::Estimate(v) => Ok(v),
            other => Err(unexpected("estimate", other)),
        }
    }

    /// Fetches synopsis statistics.
    pub fn stats(&mut self) -> Result<Stats, ClientError> {
        match self.request(&Request::Stats, true)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("stats", other)),
        }
    }

    /// Fetches up to `limit` tracked heavy hitters.
    pub fn heavy_hitters(&mut self, limit: u32) -> Result<Vec<(u64, i64)>, ClientError> {
        match self.request(&Request::HeavyHitters { limit }, true)? {
            Response::HeavyHitters(entries) => Ok(entries),
            other => Err(unexpected("heavy hitters", other)),
        }
    }

    /// Fetches the server's metrics exposition: Prometheus text when
    /// `json` is false, the JSON rendering otherwise.
    pub fn metrics(&mut self, json: bool) -> Result<String, ClientError> {
        match self.request(&Request::Metrics { json }, true)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", other)),
        }
    }

    /// Forces a server-side checkpoint; returns its size in bytes.
    pub fn snapshot(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Snapshot, true)? {
            Response::SnapshotDone { bytes } => Ok(bytes),
            other => Err(unexpected("snapshot ack", other)),
        }
    }

    /// Merges a shard snapshot (SKTR bytes) into the server's live
    /// synopsis; returns the post-merge `(total_trees, total_patterns)`.
    ///
    /// Not retried on transport failure: a merge that was applied but
    /// whose reply was lost would double-count the shard if resent.
    pub fn merge_snapshot(&mut self, snapshot: &[u8]) -> Result<(u64, u64), ClientError> {
        match self.request(&Request::MergeSnapshot(snapshot.to_vec()), false)? {
            Response::MergeDone { total_trees, total_patterns } => {
                Ok((total_trees, total_patterns))
            }
            other => Err(unexpected("merge ack", other)),
        }
    }

    /// Registers a standing query; the server pushes one update per
    /// ingest batch or merge from then on.  Returns `(subscription id,
    /// epoch at registration)` — the first pushed update carries an
    /// epoch at or after the returned one.
    ///
    /// Subscriptions live on the *connection*: if this client reconnects
    /// (any transport error does), they are gone and must be
    /// re-established.  Not retried for that reason.
    pub fn subscribe(
        &mut self,
        mode: SubscribeMode,
        query: &str,
    ) -> Result<(u64, u64), ClientError> {
        let req = Request::Subscribe { mode, query: query.to_string() };
        match self.request(&req, false)? {
            Response::Subscribed { id, epoch } => Ok((id, epoch)),
            other => Err(unexpected("subscription ack", other)),
        }
    }

    /// Cancels a subscription made on this connection.
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), ClientError> {
        match self.request(&Request::Unsubscribe { id }, false)? {
            Response::Unsubscribed => Ok(()),
            other => Err(unexpected("unsubscribe ack", other)),
        }
    }

    /// Waits up to `timeout` for the next pushed [`Update`] — buffered
    /// ones first, then the wire.  `Ok(None)` means the timeout passed
    /// with no update (not an error: batches may simply be sparse).
    ///
    /// Never reconnects: a reconnect would silently hold zero
    /// subscriptions, so a broken connection surfaces as the error it is
    /// and the caller re-subscribes explicitly.
    pub fn next_update(&mut self, timeout: Duration) -> Result<Option<Update>, ClientError> {
        if let Some(u) = self.pending.pop_front() {
            return Ok(Some(u));
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection lost; subscriptions must be re-established",
            )));
        };
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match read_frame_patient(stream, self.max_frame, self.response_timeout) {
                Ok(Frame::Msg { kind, payload }) => {
                    match Response::decode(kind, &payload).map_err(ClientError::from)? {
                        Response::EstimateUpdate { id, epoch, result } => {
                            return Ok(Some(Update { id, epoch, result }))
                        }
                        // No request is in flight, so any other frame
                        // here is the server misbehaving.
                        _ => return Err(ClientError::Unexpected("estimate update")),
                    }
                }
                Ok(Frame::Eof) => {
                    self.stream = None;
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                Ok(Frame::Idle) => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e.into());
                }
            }
        }
    }

    /// Asks the server to checkpoint and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown, false)? {
            Response::ShuttingDown => {
                self.stream = None;
                Ok(())
            }
            other => Err(unexpected("shutdown ack", other)),
        }
    }

    /// Writes `req` without waiting for its reply, for pipelining.
    ///
    /// The server answers each connection's requests strictly in order
    /// (one worker owns the connection and processes frames
    /// sequentially), so a caller may [`Client::send`] several requests
    /// back-to-back and then collect the replies with
    /// [`Client::recv_reply`] — one reply per send, in send order.
    /// Keeping several requests in flight hides the per-request network
    /// round trip; the server's TCP receive window is the backpressure
    /// bound on how far ahead a sender can run.
    ///
    /// Pipelined sends are at-most-once: nothing is retried, and a
    /// transport error leaves the connection closed with all in-flight
    /// replies lost.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.ensure_connected()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection lost before the request could be written",
            )));
        };
        if let Err(e) = req.write_to(stream) {
            self.stream = None;
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads the reply to the oldest outstanding [`Client::send`].
    ///
    /// Pushed standing-query updates that arrive interleaved are
    /// buffered for [`Client::next_update`], exactly as during a
    /// blocking request.  An error frame surfaces as
    /// [`ClientError::Server`].  Calling with no request outstanding
    /// blocks until the response timeout.
    pub fn recv_reply(&mut self) -> Result<Response, ClientError> {
        let (max_frame, response_timeout) = (self.max_frame, self.response_timeout);
        let Self { stream: slot, pending, .. } = self;
        let Some(stream) = slot.as_mut() else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection lost with replies outstanding",
            )));
        };
        match Self::read_reply(stream, max_frame, response_timeout, pending) {
            Ok(Response::Error(m)) => Err(ClientError::Server(m)),
            Ok(other) => Ok(other),
            Err(e) => {
                *slot = None;
                Err(e)
            }
        }
    }

    /// Sends `req` and reads its reply.  When `retry` is set, transport
    /// failures reconnect (capped exponential backoff) and resend; when
    /// clear, the request is sent at most once.
    fn request(&mut self, req: &Request, retry: bool) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self.try_once(req);
            match result {
                Ok(resp) => {
                    return match resp {
                        Response::Error(m) => Err(ClientError::Server(m)),
                        other => Ok(other),
                    }
                }
                Err(ClientError::Io(e)) if retry && attempt < self.max_reconnects => {
                    self.stream = None;
                    std::thread::sleep(backoff_for(attempt));
                    attempt += 1;
                    let _ = e;
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
    }

    fn try_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        let (max_frame, response_timeout) = (self.max_frame, self.response_timeout);
        let Self { stream, pending, .. } = self;
        let Some(stream) = stream.as_mut() else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection lost before the request could be written",
            )));
        };
        req.write_to(stream)?;
        Self::read_reply(stream, max_frame, response_timeout, pending)
    }

    /// Reads direct-reply frames until one that is not a pushed update
    /// arrives; pushed updates are buffered for [`Client::next_update`].
    fn read_reply(
        stream: &mut TcpStream,
        max_frame: u32,
        response_timeout: Duration,
        pending: &mut VecDeque<Update>,
    ) -> Result<Response, ClientError> {
        let deadline = std::time::Instant::now() + response_timeout;
        loop {
            match read_frame_patient(stream, max_frame, response_timeout)? {
                Frame::Msg { kind, payload } => {
                    // Pushed updates interleave freely with request
                    // replies on a subscribed connection; buffer them for
                    // next_update and keep waiting for the actual reply.
                    match Response::decode(kind, &payload)? {
                        Response::EstimateUpdate { id, epoch, result } => {
                            pending.push_back(Update { id, epoch, result });
                        }
                        other => return Ok(other),
                    }
                }
                Frame::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Frame::Idle => {
                    if std::time::Instant::now() >= deadline {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no reply within the response timeout",
                        )));
                    }
                }
            }
        }
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(self.addr) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.read_timeout))?;
                    stream.set_nodelay(true)?;
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) if attempt < self.max_reconnects => {
                    std::thread::sleep(backoff_for(attempt));
                    attempt += 1;
                    let _ = e;
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// Sleep before retry number `attempt` (0-based): 10ms, 20ms, 40ms …
/// capped at 1s.  Shared by request retries and reconnect attempts; the
/// pre-increment form matters — incrementing `attempt` before the shift
/// made the *first* retry sleep 20ms instead of the documented 10ms.
fn backoff_for(attempt: u32) -> Duration {
    Duration::from_millis(10u64.saturating_mul(1 << attempt.min(7))).min(Duration::from_secs(1))
}

fn unexpected(wanted: &'static str, got: Response) -> ClientError {
    match got {
        Response::Error(m) => ClientError::Server(m),
        _ => ClientError::Unexpected(wanted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_starts_at_10ms_and_doubles_to_the_cap() {
        let want_ms = [10u64, 20, 40, 80, 160, 320, 640, 1000];
        for (attempt, &ms) in want_ms.iter().enumerate() {
            assert_eq!(
                backoff_for(attempt as u32),
                Duration::from_millis(ms),
                "attempt {attempt}"
            );
        }
        // Beyond the shift clamp the cap holds.
        assert_eq!(backoff_for(8), Duration::from_secs(1));
        assert_eq!(backoff_for(u32::MAX), Duration::from_secs(1));
    }
}
