//! XML entity escaping and unescaping.
//!
//! Handles the five predefined entities (`&amp;` `&lt;` `&gt;` `&quot;`
//! `&apos;`) plus decimal (`&#65;`) and hexadecimal (`&#x41;`) character
//! references.  Unknown entities are reported as errors rather than passed
//! through, since silently corrupted labels would silently corrupt counts.

use std::borrow::Cow;
use std::fmt;

/// Error from [`unescape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeError {
    /// `&` not followed by a terminated, recognised entity.
    BadEntity {
        /// Byte offset of the `&` within the input.
        at: usize,
    },
    /// A numeric character reference that is not a valid Unicode scalar.
    BadCharRef {
        /// Byte offset of the `&` within the input.
        at: usize,
    },
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeError::BadEntity { at } => write!(f, "malformed entity at byte {at}"),
            EscapeError::BadCharRef { at } => {
                write!(f, "invalid character reference at byte {at}")
            }
        }
    }
}

impl std::error::Error for EscapeError {}

/// Escapes text content for element bodies and attribute values.
///
/// Returns a borrowed slice when no escaping is needed (the common case for
/// label names), avoiding allocation on the hot parse-echo path.
pub fn escape(text: &str) -> Cow<'_, str> {
    if !text.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Unescapes entities and character references.
pub fn unescape(text: &str) -> Result<Cow<'_, str>, EscapeError> {
    if !text.contains('&') {
        return Ok(Cow::Borrowed(text));
    }
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over a full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&text[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let start = i;
        let semi = text[i..]
            .find(';')
            .map(|o| i + o)
            .ok_or(EscapeError::BadEntity { at: start })?;
        let entity = &text[i + 1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| EscapeError::BadCharRef { at: start })?;
                out.push(char::from_u32(code).ok_or(EscapeError::BadCharRef { at: start })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| EscapeError::BadCharRef { at: start })?;
                out.push(char::from_u32(code).ok_or(EscapeError::BadCharRef { at: start })?);
            }
            _ => return Err(EscapeError::BadEntity { at: start }),
        }
        i = semi + 1;
    }
    Ok(Cow::Owned(out))
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_passthrough_borrows() {
        let s = "plain text";
        assert!(matches!(escape(s), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_all_five() {
        assert_eq!(escape(r#"<a & 'b' > "c""#), r#"&lt;a &amp; &apos;b&apos; &gt; &quot;c&quot;"#);
    }

    #[test]
    fn unescape_passthrough_borrows() {
        assert!(matches!(unescape("plain").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn roundtrip() {
        for s in ["a<b>c&d\"e'f", "no entities", "&&&&", "日本語 & more"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn numeric_refs() {
        assert_eq!(unescape("&#65;&#x42;&#X43;").unwrap(), "ABC");
        assert_eq!(unescape("&#x65e5;").unwrap(), "日");
    }

    #[test]
    fn bad_entities_rejected() {
        assert_eq!(unescape("&bogus;"), Err(EscapeError::BadEntity { at: 0 }));
        assert_eq!(unescape("ab&unterminated"), Err(EscapeError::BadEntity { at: 2 }));
        assert_eq!(unescape("&#xZZ;"), Err(EscapeError::BadCharRef { at: 0 }));
        assert_eq!(unescape("&#1114112;"), Err(EscapeError::BadCharRef { at: 0 })); // > max scalar
        assert_eq!(unescape("&#xD800;"), Err(EscapeError::BadCharRef { at: 0 })); // surrogate
    }

    #[test]
    fn multibyte_text_survives() {
        assert_eq!(unescape("日&amp;本").unwrap(), "日&本");
    }
}
