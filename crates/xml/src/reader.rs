//! A non-validating pull parser for XML.
//!
//! The parser walks a `&str` once, emitting [`XmlEvent`]s.  It accepts the
//! XML subset that real-world datasets like DBLP and the Penn Treebank
//! exports use: elements, attributes, character data, entities, CDATA,
//! comments, processing instructions and a (skipped) DOCTYPE.  It does not
//! validate well-formedness of element *nesting* — that's the tree builder's
//! job, which has the stack anyway — but it does reject lexically malformed
//! input with byte positions.
//!
//! Self-closing tags produce a `StartElement` (flagged) immediately followed
//! by a synthetic `EndElement`, so downstream builders handle exactly one
//! shape of event stream.

use crate::escape::unescape;
use crate::event::XmlEvent;
use std::fmt;

/// Lexical error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset into the input.
    pub at: usize,
}

/// The kinds of lexical errors the parser reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// `<` followed by an invalid name start.
    BadTagName,
    /// Malformed attribute syntax.
    BadAttribute,
    /// A tag was not terminated with `>`.
    UnterminatedTag,
    /// Bad entity or character reference in text or attribute value.
    BadEntity,
    /// A comment was not terminated with `-->`.
    UnterminatedComment,
    /// A CDATA section was not terminated with `]]>`.
    UnterminatedCData,
    /// A processing instruction was not terminated with `?>`.
    UnterminatedPi,
    /// Stray `>` or other unexpected byte at the top level.
    UnexpectedByte(u8),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {:?}", self.at, self.kind)
    }
}

impl std::error::Error for XmlError {}

/// A pull parser over a complete input string.
///
/// ```
/// use sketchtree_xml::{XmlPullParser, XmlEvent};
/// let mut p = XmlPullParser::new("<a x='1'><b/>hi</a>");
/// let mut names = Vec::new();
/// while let Some(ev) = p.next_event().unwrap() {
///     if let XmlEvent::StartElement { name, .. } = ev {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, vec!["a", "b"]);
/// ```
#[derive(Debug)]
pub struct XmlPullParser<'a> {
    input: &'a str,
    pos: usize,
    /// Pending synthetic end-element from a self-closing tag.
    pending_end: Option<String>,
}

impl<'a> XmlPullParser<'a> {
    /// Creates a parser over the input.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            pending_end: None,
        }
    }

    /// Current byte position (for diagnostics and forest splitting).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError { kind, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.err(XmlErrorKind::BadTagName)),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    /// Returns the next event, `None` at clean end of input.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        if self.peek() == Some(b'<') {
            self.parse_markup().map(Some)
        } else {
            self.parse_text().map(Some)
        }
    }

    fn parse_text(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        let decoded = unescape(raw).map_err(|_| XmlError {
            kind: XmlErrorKind::BadEntity,
            at: start,
        })?;
        Ok(XmlEvent::Text(decoded.into_owned()))
    }

    fn parse_markup(&mut self) -> Result<XmlEvent, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        if self.starts_with("<!--") {
            return self.parse_comment();
        }
        if self.starts_with("<![CDATA[") {
            return self.parse_cdata();
        }
        if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
            return self.parse_doctype();
        }
        if self.starts_with("<?") {
            return self.parse_pi();
        }
        if self.starts_with("</") {
            self.pos += 2;
            let name = self.read_name()?;
            self.skip_ws();
            if self.peek() != Some(b'>') {
                return Err(self.err(XmlErrorKind::UnterminatedTag));
            }
            self.pos += 1;
            return Ok(XmlEvent::EndElement { name });
        }
        // Start tag.
        self.pos += 1;
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err(XmlErrorKind::UnterminatedTag));
                    }
                    self.pos += 1;
                    self.pending_end = Some(name.clone());
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    let attr_name = self
                        .read_name()
                        .map_err(|e| XmlError {
                            kind: XmlErrorKind::BadAttribute,
                            at: e.at,
                        })?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(XmlErrorKind::BadAttribute));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err(XmlErrorKind::BadAttribute)),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err(XmlErrorKind::UnexpectedEof));
                    }
                    let raw = &self.input[vstart..self.pos];
                    self.pos += 1;
                    let value = unescape(raw)
                        .map_err(|_| XmlError {
                            kind: XmlErrorKind::BadEntity,
                            at: vstart,
                        })?
                        .into_owned();
                    attributes.push((attr_name, value));
                }
            }
        }
    }

    fn parse_comment(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        self.pos += 4; // "<!--"
        match self.input[self.pos..].find("-->") {
            Some(end) => {
                let content = self.input[self.pos..self.pos + end].to_owned();
                self.pos += end + 3;
                Ok(XmlEvent::Comment(content))
            }
            None => Err(XmlError {
                kind: XmlErrorKind::UnterminatedComment,
                at: start,
            }),
        }
    }

    fn parse_cdata(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        self.pos += 9; // "<![CDATA["
        match self.input[self.pos..].find("]]>") {
            Some(end) => {
                let content = self.input[self.pos..self.pos + end].to_owned();
                self.pos += end + 3;
                Ok(XmlEvent::CData(content))
            }
            None => Err(XmlError {
                kind: XmlErrorKind::UnterminatedCData,
                at: start,
            }),
        }
    }

    fn parse_doctype(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        self.pos += 9; // "<!DOCTYPE"
        // Skip to the matching '>' accounting for an optional internal
        // subset in brackets.
        let mut depth = 0i32;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => {
                    let content = self.input[start + 9..self.pos - 1].trim().to_owned();
                    return Ok(XmlEvent::DocType(content));
                }
                _ => {}
            }
        }
        Err(XmlError {
            kind: XmlErrorKind::UnterminatedTag,
            at: start,
        })
    }

    fn parse_pi(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        self.pos += 2; // "<?"
        let target = self.read_name()?;
        match self.input[self.pos..].find("?>") {
            Some(end) => {
                let data = self.input[self.pos..self.pos + end].trim().to_owned();
                self.pos += end + 2;
                Ok(XmlEvent::ProcessingInstruction { target, data })
            }
            None => Err(XmlError {
                kind: XmlErrorKind::UnterminatedPi,
                at: start,
            }),
        }
    }
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut p = XmlPullParser::new(input);
        let mut out = Vec::new();
        while let Some(ev) = p.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    #[test]
    fn simple_document() {
        let evs = collect("<a><b>text</b></a>").unwrap();
        assert_eq!(evs.len(), 5);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evs[1], XmlEvent::StartElement { name, .. } if name == "b"));
        assert!(matches!(&evs[2], XmlEvent::Text(t) if t == "text"));
        assert!(matches!(&evs[3], XmlEvent::EndElement { name } if name == "b"));
        assert!(matches!(&evs[4], XmlEvent::EndElement { name } if name == "a"));
    }

    #[test]
    fn self_closing_synthesises_end() {
        let evs = collect("<a/>").unwrap();
        assert_eq!(evs.len(), 2);
        assert!(
            matches!(&evs[0], XmlEvent::StartElement { self_closing: true, .. })
        );
        assert!(matches!(&evs[1], XmlEvent::EndElement { name } if name == "a"));
    }

    #[test]
    fn attributes_both_quote_styles() {
        let evs = collect(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(
                    attributes,
                    &vec![
                        ("x".to_owned(), "1".to_owned()),
                        ("y".to_owned(), "two & three".to_owned())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_in_text() {
        let evs = collect("<a>&lt;b&gt; &amp; &#65;</a>").unwrap();
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "<b> & A"));
    }

    #[test]
    fn cdata_verbatim() {
        let evs = collect("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert!(matches!(&evs[1], XmlEvent::CData(t) if t == "<not & parsed>"));
    }

    #[test]
    fn comments_and_pis_and_doctype() {
        let evs = collect("<?xml version=\"1.0\"?><!DOCTYPE dblp SYSTEM \"dblp.dtd\"><!-- c --><a/>").unwrap();
        assert!(matches!(&evs[0], XmlEvent::ProcessingInstruction { target, .. } if target == "xml"));
        assert!(matches!(&evs[1], XmlEvent::DocType(d) if d.contains("dblp")));
        assert!(matches!(&evs[2], XmlEvent::Comment(c) if c == " c "));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let evs = collect("<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r/>").unwrap();
        assert!(matches!(&evs[0], XmlEvent::DocType(_)));
        assert!(matches!(&evs[1], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn whitespace_text_reported() {
        let evs = collect("<a> <b/> </a>").unwrap();
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == " "));
    }

    #[test]
    fn unicode_names_and_content() {
        let evs = collect("<日本>こんにちは</日本>").unwrap();
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "日本"));
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "こんにちは"));
    }

    #[test]
    fn error_positions() {
        let e = collect("<a><b").unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::UnexpectedEof);
        let e = collect("<a x=1>").unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::BadAttribute);
        let e = collect("<!-- never closed").unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::UnterminatedComment);
        let e = collect("<a>&bogus;</a>").unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::BadEntity);
        let e = collect("<1tag/>").unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::BadTagName);
    }

    #[test]
    fn forest_of_documents_parses_sequentially() {
        // The paper removes the root tag of one big document to get a forest;
        // the parser must happily produce multiple top-level elements.
        let evs = collect("<a/><b/><c>x</c>").unwrap();
        let starts = evs
            .iter()
            .filter(|e| matches!(e, XmlEvent::StartElement { .. }))
            .count();
        assert_eq!(starts, 3);
    }

    #[test]
    fn empty_input_is_clean_eof() {
        assert_eq!(collect("").unwrap(), Vec::new());
    }

    #[test]
    fn position_advances() {
        let mut p = XmlPullParser::new("<a/><b/>");
        p.next_event().unwrap();
        p.next_event().unwrap(); // synthetic end
        assert_eq!(p.position(), 4);
    }
}
