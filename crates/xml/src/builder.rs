//! Folding XML events into labeled trees.
//!
//! Modeling choices (matching the paper's datasets, Section 7.2/7.3):
//!
//! * element name → node label;
//! * non-whitespace character data (text or CDATA) → a **leaf child node
//!   labeled with the trimmed text itself** — this is how DBLP queries can
//!   contain "element names as well as values (CDATA)";
//! * attributes are skipped by default, or modeled as `@name` child nodes
//!   carrying a value leaf when [`BuilderConfig::include_attributes`] is set;
//! * comments, PIs and doctypes are ignored.
//!
//! [`XmlTreeBuilder::parse_forest`] parses a whole input and returns each
//! top-level element as its own tree — exactly the paper's "forest of trees
//! created by removing the root tag" streaming setup.

use crate::event::XmlEvent;
use crate::reader::{XmlError, XmlErrorKind, XmlPullParser};
use sketchtree_tree::{Label, LabelTable, Tree, TreeBuilder};
use std::collections::HashSet;
use std::fmt;

/// Configuration for [`XmlTreeBuilder`].
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Model attributes as `@name(value)` child nodes. Default: false.
    pub include_attributes: bool,
    /// Model non-whitespace text/CDATA as value leaf nodes. Default: true.
    pub include_text: bool,
    /// Maximum accepted document depth (guards against pathological inputs).
    /// Default: 4096.
    pub max_depth: usize,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            include_attributes: false,
            include_text: true,
            max_depth: 4096,
        }
    }
}

/// Errors from tree building: lexical errors plus nesting violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildXmlError {
    /// Underlying lexical error.
    Xml(XmlError),
    /// `</b>` closed while `<a>` was open.
    MismatchedTag {
        /// The open element.
        expected: String,
        /// The closing tag found.
        found: String,
    },
    /// End tag with nothing open.
    UnbalancedEnd(String),
    /// Input ended with open elements.
    UnclosedElements(usize),
    /// Document deeper than [`BuilderConfig::max_depth`].
    TooDeep,
    /// Non-whitespace text at the top level, outside any element.
    TopLevelText,
}

impl fmt::Display for BuildXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildXmlError::Xml(e) => write!(f, "{e}"),
            BuildXmlError::MismatchedTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            BuildXmlError::UnbalancedEnd(name) => write!(f, "unbalanced end tag </{name}>"),
            BuildXmlError::UnclosedElements(n) => write!(f, "{n} unclosed element(s) at EOF"),
            BuildXmlError::TooDeep => write!(f, "document exceeds maximum depth"),
            BuildXmlError::TopLevelText => write!(f, "text outside any element"),
        }
    }
}

impl std::error::Error for BuildXmlError {}

impl From<XmlError> for BuildXmlError {
    fn from(e: XmlError) -> Self {
        BuildXmlError::Xml(e)
    }
}

/// Builds [`Tree`]s from XML, interning labels into a shared [`LabelTable`].
#[derive(Debug)]
pub struct XmlTreeBuilder {
    config: BuilderConfig,
    /// Labels created from text content (values), as opposed to element
    /// names — remembered so [`crate::writer::write_tree`] can serialise
    /// them back as text and round-trips are exact.
    text_labels: HashSet<Label>,
}

impl Default for XmlTreeBuilder {
    fn default() -> Self {
        Self::new(BuilderConfig::default())
    }
}

impl XmlTreeBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: BuilderConfig) -> Self {
        Self {
            config,
            text_labels: HashSet::new(),
        }
    }

    /// Labels known to be text values rather than element names.
    pub fn text_labels(&self) -> &HashSet<Label> {
        &self.text_labels
    }

    /// Parses one complete document (exactly one top-level element).
    pub fn parse_document(
        &mut self,
        input: &str,
        labels: &mut LabelTable,
    ) -> Result<Tree, BuildXmlError> {
        let mut forest = self.parse_forest(input, labels)?;
        if forest.len() != 1 {
            return Err(BuildXmlError::Xml(XmlError {
                kind: XmlErrorKind::UnexpectedByte(b'<'),
                at: 0,
            }));
        }
        Ok(forest.pop().expect("checked length"))
    }

    /// Parses an input containing any number of top-level elements,
    /// returning one tree per element — the paper's forest streaming model.
    pub fn parse_forest(
        &mut self,
        input: &str,
        labels: &mut LabelTable,
    ) -> Result<Vec<Tree>, BuildXmlError> {
        let mut parser = XmlPullParser::new(input);
        let mut trees = Vec::new();
        let mut builder = TreeBuilder::new();
        let mut open: Vec<String> = Vec::new();
        while let Some(event) = parser.next_event()? {
            match event {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    if open.len() >= self.config.max_depth {
                        return Err(BuildXmlError::TooDeep);
                    }
                    if open.is_empty() {
                        builder = TreeBuilder::new();
                    }
                    let label = labels.intern(&name);
                    builder.open(label).expect("builder state tracked by open stack");
                    if self.config.include_attributes {
                        for (aname, avalue) in &attributes {
                            let alabel = labels.intern(&format!("@{aname}"));
                            builder.open(alabel).expect("attribute node");
                            if !avalue.is_empty() {
                                let vlabel = labels.intern(avalue);
                                self.text_labels.insert(vlabel);
                                builder.open(vlabel).expect("attribute value node");
                                builder.close().expect("attribute value node");
                            }
                            builder.close().expect("attribute node");
                        }
                    }
                    open.push(name);
                }
                XmlEvent::EndElement { name } => match open.pop() {
                    None => return Err(BuildXmlError::UnbalancedEnd(name)),
                    Some(expected) if expected != name => {
                        return Err(BuildXmlError::MismatchedTag {
                            expected,
                            found: name,
                        })
                    }
                    Some(_) => {
                        builder.close().expect("balanced by open stack");
                        if open.is_empty() {
                            let done = std::mem::take(&mut builder);
                            trees.push(done.finish().expect("complete document"));
                        }
                    }
                },
                XmlEvent::Text(t) | XmlEvent::CData(t) => {
                    let trimmed = t.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if open.is_empty() {
                        return Err(BuildXmlError::TopLevelText);
                    }
                    if self.config.include_text {
                        let vlabel = labels.intern(trimmed);
                        self.text_labels.insert(vlabel);
                        builder.open(vlabel).expect("text node");
                        builder.close().expect("text node");
                    }
                }
                _ => {} // comments, PIs, doctype
            }
        }
        if !open.is_empty() {
            return Err(BuildXmlError::UnclosedElements(open.len()));
        }
        Ok(trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse1(input: &str) -> (Tree, LabelTable) {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let t = b.parse_document(input, &mut labels).unwrap();
        (t, labels)
    }

    #[test]
    fn element_structure() {
        let (t, labels) = parse1("<a><b/><c><d/></c></a>");
        assert_eq!(t.to_sexpr_named(&labels), "a(b,c(d))");
    }

    #[test]
    fn text_becomes_value_leaf() {
        let (t, labels) = parse1("<author>Don Knuth</author>");
        assert_eq!(t.to_sexpr_named(&labels), "author(Don Knuth)");
    }

    #[test]
    fn whitespace_text_dropped() {
        let (t, labels) = parse1("<a>\n  <b/>\n</a>");
        assert_eq!(t.to_sexpr_named(&labels), "a(b)");
    }

    #[test]
    fn cdata_becomes_value_leaf() {
        let (t, labels) = parse1("<title><![CDATA[X < Y]]></title>");
        assert_eq!(t.to_sexpr_named(&labels), "title(X < Y)");
    }

    #[test]
    fn attributes_skipped_by_default() {
        let (t, labels) = parse1(r#"<a key="v"><b/></a>"#);
        assert_eq!(t.to_sexpr_named(&labels), "a(b)");
    }

    #[test]
    fn attributes_included_when_configured() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::new(BuilderConfig {
            include_attributes: true,
            ..BuilderConfig::default()
        });
        let t = b
            .parse_document(r#"<a key="v"/>"#, &mut labels)
            .unwrap();
        assert_eq!(t.to_sexpr_named(&labels), "a(@key(v))");
    }

    #[test]
    fn text_disabled_when_configured() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::new(BuilderConfig {
            include_text: false,
            ..BuilderConfig::default()
        });
        let t = b.parse_document("<a>ignored</a>", &mut labels).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn forest_yields_one_tree_per_top_element() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let trees = b
            .parse_forest("<a><b/></a><c/><d>t</d>", &mut labels)
            .unwrap();
        assert_eq!(trees.len(), 3);
        assert_eq!(trees[0].to_sexpr_named(&labels), "a(b)");
        assert_eq!(trees[1].to_sexpr_named(&labels), "c");
        assert_eq!(trees[2].to_sexpr_named(&labels), "d(t)");
    }

    #[test]
    fn text_labels_tracked() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        b.parse_document("<a>value</a>", &mut labels).unwrap();
        let v = labels.lookup("value").unwrap();
        let a = labels.lookup("a").unwrap();
        assert!(b.text_labels().contains(&v));
        assert!(!b.text_labels().contains(&a));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let e = b.parse_forest("<a></b>", &mut labels).unwrap_err();
        assert!(matches!(e, BuildXmlError::MismatchedTag { .. }));
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let e = b.parse_forest("</a>", &mut labels).unwrap_err();
        assert_eq!(e, BuildXmlError::UnbalancedEnd("a".into()));
    }

    #[test]
    fn unclosed_rejected() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let e = b.parse_forest("<a><b></b>", &mut labels).unwrap_err();
        assert_eq!(e, BuildXmlError::UnclosedElements(1));
    }

    #[test]
    fn top_level_text_rejected() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let e = b.parse_forest("stray<a/>", &mut labels).unwrap_err();
        assert_eq!(e, BuildXmlError::TopLevelText);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::new(BuilderConfig {
            max_depth: 3,
            ..BuilderConfig::default()
        });
        let e = b
            .parse_forest("<a><a><a><a/></a></a></a>", &mut labels)
            .unwrap_err();
        assert_eq!(e, BuildXmlError::TooDeep);
    }

    #[test]
    fn multiple_docs_via_parse_document_rejected() {
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        assert!(b.parse_document("<a/><b/>", &mut labels).is_err());
    }

    #[test]
    fn mixed_content_order_preserved() {
        let (t, labels) = parse1("<p>one<b/>two</p>");
        assert_eq!(t.to_sexpr_named(&labels), "p(one,b,two)");
    }
}
