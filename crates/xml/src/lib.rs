//! Streaming XML for SketchTree.
//!
//! The paper's evaluation streams XML datasets (TREEBANK and DBLP) through
//! the synopsis, one document tree at a time.  This crate supplies the XML
//! substrate, built from scratch:
//!
//! * [`escape`] — entity escaping/unescaping (`&amp;`, numeric references);
//! * [`event`] — the SAX-style event vocabulary;
//! * [`reader`] — [`reader::XmlPullParser`], a non-validating pull parser
//!   producing events in document order with byte positions on errors;
//! * [`builder`] — [`builder::XmlTreeBuilder`], which folds events into
//!   [`sketchtree_tree::Tree`] values.  Element names become node labels;
//!   non-whitespace character data becomes a leaf child labeled with the
//!   text itself (the paper's DBLP queries match "element names as well as
//!   values (CDATA)", which is exactly this modeling); attributes can
//!   optionally be modeled as `@name` child nodes;
//! * [`splitter`] — [`splitter::DocumentSplitter`], incremental top-level
//!   document extraction from unbounded byte streams (memory bounded by
//!   one document, not the stream);
//! * [`writer`] — serialises trees back to XML (used by the data generators
//!   so that the full parse path is exercised end to end).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod escape;
pub mod event;
pub mod reader;
pub mod splitter;
pub mod writer;

pub use builder::{BuilderConfig, XmlTreeBuilder};
pub use event::XmlEvent;
pub use reader::{XmlError, XmlPullParser};
pub use splitter::DocumentSplitter;
pub use writer::write_tree;
