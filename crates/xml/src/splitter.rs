//! Incremental document splitting for unbounded XML streams.
//!
//! The pull parser works on a complete `&str`; real feeds arrive as bytes
//! from sockets or huge files that should never be materialised whole.
//! [`DocumentSplitter`] scans an `io::BufRead` incrementally and yields the
//! text of one complete *top-level element* at a time — exactly the
//! paper's "forest of trees processed in a single pass" model — tracking
//! element depth through quotes, comments, CDATA sections, processing
//! instructions and DOCTYPE so that `<`/`>` inside them never confuse the
//! nesting count.  Memory is bounded by the largest single document, not
//! the stream.

use std::io::{self, BufRead};

/// Splits a byte stream into complete top-level XML documents.
///
/// ```
/// use sketchtree_xml::DocumentSplitter;
/// let mut s = DocumentSplitter::new(std::io::Cursor::new(b"<a><b/></a><c/>".to_vec()));
/// assert_eq!(s.next_document().unwrap().as_deref(), Some("<a><b/></a>"));
/// assert_eq!(s.next_document().unwrap().as_deref(), Some("<c/>"));
/// assert!(s.next_document().unwrap().is_none());
/// ```
pub struct DocumentSplitter<R> {
    reader: R,
    /// Carry-over bytes: a partial document from the previous read.
    buf: Vec<u8>,
    /// Scan state persisted across reads.
    state: ScanState,
    /// Byte position within `buf` up to which we have scanned.
    scanned: usize,
    /// Element nesting depth at `scanned`.
    depth: i64,
    /// Offset in `buf` where the current document started.
    doc_start: Option<usize>,
    eof: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    /// Between markup (text or before a document).
    Text,
    /// Inside a tag: `kind` distinguishes open/close/self-closing parsing.
    Tag {
        /// Whether a `/` immediately followed `<`.
        closing: bool,
        /// Whether the last byte seen inside the tag was `/`.
        slash_pending: bool,
        /// Inside a quoted attribute value, the quote byte.
        quote: Option<u8>,
    },
    /// Inside `<!-- … -->`; tracks trailing `-` count.
    Comment(u8),
    /// Inside `<![CDATA[ … ]]>`; tracks trailing `]` count.
    CData(u8),
    /// Inside `<? … ?>`; tracks whether last byte was `?`.
    Pi(bool),
    /// Inside `<!DOCTYPE … >` (bracket depth for the internal subset).
    DocType(i32),
    /// Just saw `<`; deciding which construct begins (bytes seen so far).
    MarkupStart(u8),
}

/// Errors from [`DocumentSplitter::next_document`].
#[derive(Debug)]
pub enum SplitError {
    /// Underlying reader failed.
    Io(io::Error),
    /// Stream ended mid-document.
    TruncatedDocument,
    /// A close tag appeared with no open element.
    UnbalancedClose,
    /// Document is not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::Io(e) => write!(f, "I/O error: {e}"),
            SplitError::TruncatedDocument => write!(f, "stream ended mid-document"),
            SplitError::UnbalancedClose => write!(f, "unbalanced close tag at top level"),
            SplitError::InvalidUtf8 => write!(f, "document is not valid UTF-8"),
        }
    }
}

impl std::error::Error for SplitError {}

impl From<io::Error> for SplitError {
    fn from(e: io::Error) -> Self {
        SplitError::Io(e)
    }
}

impl<R: BufRead> DocumentSplitter<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            state: ScanState::Text,
            scanned: 0,
            depth: 0,
            doc_start: None,
            eof: false,
        }
    }

    /// Returns the next complete top-level document's text, or `None` at a
    /// clean end of stream.
    pub fn next_document(&mut self) -> Result<Option<String>, SplitError> {
        loop {
            // Scan what we have.
            if let Some(end) = self.scan()? {
                let start = self.doc_start.take().expect("document was started");
                let doc: Vec<u8> = self.buf[start..end].to_vec();
                // Drop consumed bytes; keep the tail.
                self.buf.drain(..end);
                self.scanned -= end;
                let text = String::from_utf8(doc).map_err(|_| SplitError::InvalidUtf8)?;
                return Ok(Some(text));
            }
            if self.eof {
                if self.doc_start.is_some() || self.depth > 0 {
                    return Err(SplitError::TruncatedDocument);
                }
                return Ok(None);
            }
            // Need more bytes.
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                self.eof = true;
                continue;
            }
            let n = chunk.len();
            self.buf.extend_from_slice(chunk);
            self.reader.consume(n);
        }
    }

    /// Advances the scanner; returns the end offset (exclusive) of a
    /// completed top-level document if one finished.
    fn scan(&mut self) -> Result<Option<usize>, SplitError> {
        while self.scanned < self.buf.len() {
            let b = self.buf[self.scanned];
            self.scanned += 1;
            match self.state {
                ScanState::Text => {
                    if b == b'<' {
                        self.state = ScanState::MarkupStart(0);
                        if self.depth == 0 && self.doc_start.is_none() {
                            self.doc_start = Some(self.scanned - 1);
                        }
                    }
                }
                ScanState::MarkupStart(seen) => {
                    // Decide the construct from the first byte(s) after '<'.
                    match (seen, b) {
                        (0, b'/') => {
                            self.state = ScanState::Tag {
                                closing: true,
                                slash_pending: false,
                                quote: None,
                            }
                        }
                        (0, b'?') => self.state = ScanState::Pi(false),
                        (0, b'!') => self.state = ScanState::MarkupStart(1),
                        (0, _) => {
                            self.state = ScanState::Tag {
                                closing: false,
                                slash_pending: false,
                                quote: None,
                            }
                        }
                        (1, b'-') => self.state = ScanState::MarkupStart(2),
                        (1, b'[') => self.state = ScanState::CData(0),
                        (1, _) => self.state = ScanState::DocType(0), // <!DOCTYPE or similar
                        (2, b'-') => self.state = ScanState::Comment(0),
                        (2, _) => self.state = ScanState::DocType(0),
                        _ => unreachable!("MarkupStart seen > 2"),
                    }
                    // A comment/PI/doctype before any element should not
                    // start a document; undo the tentative start.
                    if self.depth == 0
                        && matches!(
                            self.state,
                            ScanState::Pi(_) | ScanState::Comment(_) | ScanState::DocType(_)
                        )
                    {
                        self.doc_start = None;
                    }
                }
                ScanState::Tag {
                    closing,
                    slash_pending,
                    quote,
                } => match quote {
                    Some(q) => {
                        if b == q {
                            self.state = ScanState::Tag {
                                closing,
                                slash_pending: false,
                                quote: None,
                            };
                        }
                    }
                    None => match b {
                        b'"' | b'\'' => {
                            self.state = ScanState::Tag {
                                closing,
                                slash_pending: false,
                                quote: Some(b),
                            }
                        }
                        b'/' => {
                            self.state = ScanState::Tag {
                                closing,
                                slash_pending: true,
                                quote: None,
                            }
                        }
                        b'>' => {
                            self.state = ScanState::Text;
                            if closing {
                                self.depth -= 1;
                                if self.depth < 0 {
                                    return Err(SplitError::UnbalancedClose);
                                }
                            } else if !slash_pending {
                                self.depth += 1;
                            }
                            // Self-closing at top level is a whole document.
                            if self.depth == 0 && self.doc_start.is_some() {
                                return Ok(Some(self.scanned));
                            }
                        }
                        _ => {
                            if slash_pending {
                                self.state = ScanState::Tag {
                                    closing,
                                    slash_pending: false,
                                    quote: None,
                                };
                            }
                        }
                    },
                },
                ScanState::Comment(dashes) => {
                    self.state = match (dashes, b) {
                        (_, b'-') => ScanState::Comment((dashes + 1).min(2)),
                        (2, b'>') => ScanState::Text,
                        _ => ScanState::Comment(0),
                    };
                }
                ScanState::CData(brackets) => {
                    self.state = match (brackets, b) {
                        (_, b']') => ScanState::CData((brackets + 1).min(2)),
                        (2, b'>') => ScanState::Text,
                        _ => ScanState::CData(0),
                    };
                }
                ScanState::Pi(question) => {
                    self.state = match (question, b) {
                        (_, b'?') => ScanState::Pi(true),
                        (true, b'>') => ScanState::Text,
                        _ => ScanState::Pi(false),
                    };
                }
                ScanState::DocType(brackets) => {
                    self.state = match b {
                        b'[' => ScanState::DocType(brackets + 1),
                        b']' => ScanState::DocType(brackets - 1),
                        b'>' if brackets <= 0 => ScanState::Text,
                        _ => ScanState::DocType(brackets),
                    };
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn split_all(input: &str) -> Result<Vec<String>, SplitError> {
        let mut s = DocumentSplitter::new(Cursor::new(input.as_bytes().to_vec()));
        let mut out = Vec::new();
        while let Some(doc) = s.next_document()? {
            out.push(doc);
        }
        Ok(out)
    }

    #[test]
    fn splits_simple_forest() {
        let docs = split_all("<a><b/></a><c/><d>t</d>").unwrap();
        assert_eq!(docs, vec!["<a><b/></a>", "<c/>", "<d>t</d>"]);
    }

    #[test]
    fn whitespace_between_documents_dropped() {
        let docs = split_all("<a/>\n  <b/>\n").unwrap();
        assert_eq!(docs, vec!["<a/>", "<b/>"]);
    }

    #[test]
    fn nested_same_name_elements() {
        let docs = split_all("<a><a><a/></a></a><a/>").unwrap();
        assert_eq!(docs, vec!["<a><a><a/></a></a>", "<a/>"]);
    }

    #[test]
    fn angle_brackets_in_attributes_ignored() {
        let docs = split_all(r#"<a attr="<not><a><tag>"><b/></a>"#).unwrap();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].starts_with("<a attr="));
    }

    #[test]
    fn comments_and_cdata_opaque() {
        let input = "<a><!-- </a> --><![CDATA[</a><b>]]></a><c/>";
        let docs = split_all(input).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1], "<c/>");
    }

    #[test]
    fn prolog_skipped() {
        let input = "<?xml version=\"1.0\"?><!DOCTYPE dblp [<!ELEMENT x (y)>]><a/><b/>";
        let docs = split_all(input).unwrap();
        assert_eq!(docs, vec!["<a/>", "<b/>"]);
    }

    #[test]
    fn truncated_document_errors() {
        assert!(matches!(
            split_all("<a><b>"),
            Err(SplitError::TruncatedDocument)
        ));
    }

    #[test]
    fn unbalanced_close_errors() {
        assert!(matches!(split_all("</a>"), Err(SplitError::UnbalancedClose)));
        assert!(matches!(
            split_all("<a/></b>"),
            Err(SplitError::UnbalancedClose)
        ));
    }

    #[test]
    fn tiny_read_chunks() {
        // A 1-byte-at-a-time reader exercises every carry-over path.
        struct OneByte<'a>(&'a [u8]);
        impl io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let input = r#"<a x="1"><!-- c --><b><![CDATA[raw </b>]]></b></a><c/>"#;
        let reader = io::BufReader::with_capacity(1, OneByte(input.as_bytes()));
        let mut s = DocumentSplitter::new(reader);
        let mut out = Vec::new();
        while let Some(d) = s.next_document().unwrap() {
            out.push(d);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], "<c/>");
    }

    #[test]
    fn split_documents_parse_cleanly() {
        use crate::builder::XmlTreeBuilder;
        use sketchtree_tree::LabelTable;
        let input = "<r><x>1</x></r><r><y/></r><z a='v'/>";
        let docs = split_all(input).unwrap();
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        for d in &docs {
            b.parse_document(d, &mut labels).expect("splits are documents");
        }
    }

    #[test]
    fn empty_stream() {
        assert!(split_all("").unwrap().is_empty());
        assert!(split_all("   \n  ").unwrap().is_empty());
    }

    #[test]
    fn memory_bounded_by_document() {
        // Stream many documents through a splitter; internal buffer stays
        // around the size of one document.
        let one = "<doc><field>value</field></doc>";
        let many = one.repeat(1000);
        // A small BufReader capacity forces incremental reads (a bare
        // Cursor would hand over the whole stream in one fill_buf call).
        let reader = io::BufReader::with_capacity(256, Cursor::new(many.into_bytes()));
        let mut s = DocumentSplitter::new(reader);
        let mut count = 0;
        while let Some(_d) = s.next_document().unwrap() {
            count += 1;
            assert!(s.buf.len() <= 1024, "buffer ballooned: {}", s.buf.len());
        }
        assert_eq!(count, 1000);
    }
}
