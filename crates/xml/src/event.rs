//! SAX-style XML events.

/// One parsing event, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="value" …>` or the opening half of `<name …/>`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// True if the tag was self-closing (`<name/>`); the parser still
        /// emits a matching [`XmlEvent::EndElement`] immediately after, so
        /// consumers can ignore this flag.
        self_closing: bool,
    },
    /// `</name>` (also synthesised after a self-closing start tag).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data between tags, entity-decoded. Whitespace-only runs are
    /// still reported; consumers decide whether to drop them.
    Text(String),
    /// `<![CDATA[ … ]]>` content, verbatim.
    CData(String),
    /// `<!-- … -->` content.
    Comment(String),
    /// `<?target data?>` (including the XML declaration).
    ProcessingInstruction {
        /// PI target (e.g. `xml`).
        target: String,
        /// Raw data after the target.
        data: String,
    },
    /// `<!DOCTYPE …>` raw content (not interpreted).
    DocType(String),
}

impl XmlEvent {
    /// True for events that carry no tree structure (comments, PIs,
    /// doctypes).
    pub fn is_ignorable(&self) -> bool {
        matches!(
            self,
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } | XmlEvent::DocType(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignorable_classification() {
        assert!(XmlEvent::Comment("c".into()).is_ignorable());
        assert!(XmlEvent::DocType("d".into()).is_ignorable());
        assert!(XmlEvent::ProcessingInstruction {
            target: "xml".into(),
            data: String::new()
        }
        .is_ignorable());
        assert!(!XmlEvent::Text("t".into()).is_ignorable());
        assert!(!XmlEvent::StartElement {
            name: "e".into(),
            attributes: vec![],
            self_closing: false
        }
        .is_ignorable());
    }
}
