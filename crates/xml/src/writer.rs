//! Serialising labeled trees back to XML.
//!
//! The inverse of [`crate::builder`]: nodes whose labels are *text values*
//! (per the set the builder tracks, or any predicate) are written as
//! character data; all other nodes become elements.  The writer exists so
//! the data generators can emit genuine XML and the whole
//! generate → serialise → parse → enumerate pipeline is exercised, not just
//! in-memory trees.

use crate::escape::escape;
use sketchtree_tree::{Label, LabelTable, NodeId, Tree};

/// Writes a tree as XML, using `is_text` to decide which leaves are
/// character data.
pub fn write_tree(
    tree: &Tree,
    labels: &LabelTable,
    is_text: &dyn Fn(Label) -> bool,
) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), labels, is_text, &mut out);
    out
}

/// Writes a whole forest, one element after another (the paper's stream
/// serialisation: a root-stripped document).
pub fn write_forest(
    trees: &[Tree],
    labels: &LabelTable,
    is_text: &dyn Fn(Label) -> bool,
) -> String {
    let mut out = String::new();
    for t in trees {
        write_node(t, t.root(), labels, is_text, &mut out);
        out.push('\n');
    }
    out
}

fn write_node(
    tree: &Tree,
    id: NodeId,
    labels: &LabelTable,
    is_text: &dyn Fn(Label) -> bool,
    out: &mut String,
) {
    let label = tree.label(id);
    let name = labels.name(label);
    if tree.is_leaf(id) && is_text(label) {
        out.push_str(&escape(name));
        return;
    }
    out.push('<');
    out.push_str(name);
    if tree.is_leaf(id) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for &c in tree.children(id) {
        write_node(tree, c, labels, is_text, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::XmlTreeBuilder;

    #[test]
    fn writes_elements_and_text() {
        let mut labels = LabelTable::new();
        let a = labels.intern("a");
        let b = labels.intern("b");
        let v = labels.intern("hello & <world>");
        let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(v)]);
        let xml = write_tree(&t, &labels, &|l| l == v);
        assert_eq!(xml, "<a><b/>hello &amp; &lt;world&gt;</a>");
    }

    #[test]
    fn roundtrip_through_parser() {
        let mut labels = LabelTable::new();
        let mut builder = XmlTreeBuilder::default();
        let orig = "<article><author>Knuth</author><title>TAOCP</title><year>1968</year></article>";
        let t = builder.parse_document(orig, &mut labels).unwrap();
        let text = builder.text_labels().clone();
        let xml = write_tree(&t, &labels, &|l| text.contains(&l));
        assert_eq!(xml, orig);
        // And parse the serialisation again: identical tree.
        let t2 = builder.parse_document(&xml, &mut labels).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn forest_roundtrip() {
        let mut labels = LabelTable::new();
        let mut builder = XmlTreeBuilder::default();
        let orig = "<a><b/></a><c>v</c>";
        let trees = builder.parse_forest(orig, &mut labels).unwrap();
        let text = builder.text_labels().clone();
        let xml = write_forest(&trees, &labels, &|l| text.contains(&l));
        let trees2 = builder.parse_forest(&xml, &mut labels).unwrap();
        assert_eq!(trees, trees2);
    }

    #[test]
    fn single_leaf_element() {
        let mut labels = LabelTable::new();
        let a = labels.intern("a");
        let xml = write_tree(&Tree::leaf(a), &labels, &|_| false);
        assert_eq!(xml, "<a/>");
    }
}
