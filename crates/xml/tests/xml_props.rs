//! Property-based tests for the XML substrate: escaping is invertible and
//! write → parse is the identity on trees.

use proptest::prelude::*;
use sketchtree_xml::builder::XmlTreeBuilder;
use sketchtree_xml::escape::{escape, unescape};
use sketchtree_xml::writer::write_tree;
use sketchtree_tree::{LabelTable, Tree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escape_roundtrip(s in "\\PC*") {
        let escaped = escape(&s).into_owned();
        prop_assert_eq!(unescape(&escaped).expect("escaped text is valid"), s);
    }

    #[test]
    fn escaped_text_has_no_specials(s in "\\PC*") {
        let escaped = escape(&s);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        prop_assert!(!escaped.contains('"'));
    }

    /// The pull parser must never panic on arbitrary input — malformed
    /// streams produce positioned errors, not crashes.
    #[test]
    fn parser_never_panics(s in "\\PC*") {
        let mut p = sketchtree_xml::XmlPullParser::new(&s);
        for _ in 0..10_000 {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// XML-ish soup (lots of angle brackets and quotes) also never panics,
    /// in the parser, the builder, or the splitter.
    #[test]
    fn xmlish_soup_never_panics(s in "[<>/a-z \"'!?\\[\\]=-]{0,120}") {
        let mut p = sketchtree_xml::XmlPullParser::new(&s);
        for _ in 0..10_000 {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
        let mut labels = LabelTable::new();
        let mut b = XmlTreeBuilder::default();
        let _ = b.parse_forest(&s, &mut labels);
        let mut splitter = sketchtree_xml::DocumentSplitter::new(std::io::Cursor::new(
            s.as_bytes().to_vec(),
        ));
        for _ in 0..10_000 {
            match splitter.next_document() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// Strategy: a random element tree with XML-safe names and text leaves.
fn arb_xml_tree() -> impl Strategy<Value = (Tree, LabelTable, Vec<bool>)> {
    // Represent a tree shape as nested tuples via recursion; labels indexed
    // into a fixed pool of element names plus generated text strings.
    #[derive(Debug, Clone)]
    enum Node {
        Element(u8, Vec<Node>),
        Text(String),
    }
    let leaf = prop_oneof![
        (0u8..6).prop_map(|i| Node::Element(i, Vec::new())),
        "[a-zA-Z0-9 .,&<>']{1,12}".prop_map(Node::Text),
    ];
    let node = leaf.prop_recursive(4, 32, 4, |inner| {
        (0u8..6, prop::collection::vec(inner, 0..4)).prop_map(|(i, mut children)| {
            // Text must not be adjacent to text (the builder would merge
            // trimmed runs distinctly, but the writer would fuse them).
            children.dedup_by(|a, b| matches!(a, Node::Text(_)) && matches!(b, Node::Text(_)));
            Node::Element(i, children)
        })
    });
    // Root must be an element.
    (0u8..6, prop::collection::vec(node, 0..4)).prop_map(|(i, mut children)| {
        children.dedup_by(|a, b| matches!(a, Node::Text(_)) && matches!(b, Node::Text(_)));
        let root = Node::Element(i, children);
        let mut labels = LabelTable::new();
        let names = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];
        fn build(n: &Node, labels: &mut LabelTable, names: &[&str], text: &mut Vec<bool>) -> Tree {
            match n {
                Node::Text(s) => {
                    let l = labels.intern(s.trim());
                    while text.len() <= l.0 as usize {
                        text.push(false);
                    }
                    text[l.0 as usize] = true;
                    Tree::leaf(l)
                }
                Node::Element(i, children) => {
                    let l = labels.intern(names[*i as usize]);
                    while text.len() <= l.0 as usize {
                        text.push(false);
                    }
                    let kids: Vec<Tree> = children
                        .iter()
                        .map(|c| build(c, labels, names, text))
                        .collect();
                    if kids.is_empty() {
                        Tree::leaf(l)
                    } else {
                        Tree::node(l, kids)
                    }
                }
            }
        }
        let mut text = Vec::new();
        let t = build(&root, &mut labels, &names, &mut text);
        (t, labels, text)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The streaming splitter recovers exactly the documents of a random
    /// forest regardless of read-chunk size, and each recovered document
    /// parses to the tree it was written from.
    #[test]
    fn splitter_recovers_forest(
        forest in prop::collection::vec(arb_xml_tree(), 1..6),
        chunk in 1usize..64,
    ) {
        use sketchtree_xml::DocumentSplitter;
        // Serialise each tree with its own label table/text predicate.
        let mut stream = String::new();
        let mut expected = Vec::new();
        for (t, labels, text) in &forest {
            for (l, name) in labels.iter() {
                if text.get(l.0 as usize).copied().unwrap_or(false) && name.trim().is_empty() {
                    return Ok(()); // discard degenerate text labels
                }
            }
            let xml = write_tree(t, labels, &|l| {
                text.get(l.0 as usize).copied().unwrap_or(false)
            });
            expected.push(xml.clone());
            stream.push_str(&xml);
            stream.push('\n');
        }
        let reader = std::io::BufReader::with_capacity(
            chunk,
            std::io::Cursor::new(stream.into_bytes()),
        );
        let mut splitter = DocumentSplitter::new(reader);
        let mut got = Vec::new();
        while let Some(d) = splitter.next_document().expect("valid stream") {
            got.push(d);
        }
        prop_assert_eq!(got, expected);
    }

    /// write(t) parses back to t, provided text leaves are non-empty after
    /// trimming (guaranteed by the strategy) and no two text nodes are
    /// adjacent.
    #[test]
    fn write_parse_roundtrip((t, labels, text) in arb_xml_tree()) {
        // Skip cases where a generated text string trims to empty or equals
        // an element name used as an element (would be modeled as text on
        // re-parse only if written as text).
        let is_text = |l: sketchtree_tree::Label| {
            text.get(l.0 as usize).copied().unwrap_or(false)
        };
        // Precondition: text labels are non-empty post-trim.
        for (l, name) in labels.iter() {
            if is_text(l) && name.trim().is_empty() {
                return Ok(()); // discard
            }
        }
        let xml = write_tree(&t, &labels, &is_text);
        let mut labels2 = labels.clone();
        let mut builder = XmlTreeBuilder::default();
        let parsed = builder.parse_document(&xml, &mut labels2);
        let parsed = match parsed {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("parse error {e} on {xml}"))),
        };
        prop_assert_eq!(parsed, t, "xml: {}", xml);
    }
}
